package ralloc

import (
	"sync"
	"testing"
)

func TestPartialCrashLeakReclaimedByCollect(t *testing.T) {
	h := crashHeap(t, 0)
	m := h.NewManager()

	alice := m.Spawn()
	bob := m.Spawn()
	hdA := alice.NewHandle()
	hdB := bob.NewHandle()

	// Alice builds a persistent structure and keeps a warm cache.
	buildList(t, h, hdA, 300, 0)
	warm := hdA.Malloc(64)
	hdA.Free(warm) // stays in Alice's cache

	// Bob allocates a pile of blocks he never attaches, then crashes.
	for i := 0; i < 4000; i++ {
		hdB.Malloc(64)
	}
	usedBefore := h.SBUsed()
	m.Kill(bob)
	if !m.CrashedSinceCollection() {
		t.Fatal("manager not notified of the crash")
	}
	if m.LiveProcesses() != 1 {
		t.Fatalf("live processes = %d, want 1", m.LiveProcesses())
	}

	// Stop-the-world collection in a quiescent interval.
	var aliceCache uint64
	for c := range hdA.cache {
		aliceCache += uint64(len(hdA.cache[c]))
	}
	h.GetRoot(0, nil)
	stats, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if m.CrashedSinceCollection() {
		t.Fatal("crash flag not cleared by collection")
	}
	// Reachable = 300 list nodes + everything pinned in Alice's caches.
	if stats.ReachableBlocks != 300+aliceCache {
		t.Fatalf("reachable = %d, want %d", stats.ReachableBlocks, 300+aliceCache)
	}

	// Alice continues unharmed — including her pre-collection cache.
	if got := hdA.Malloc(64); got != warm {
		t.Fatalf("Alice's cache lost: got %#x, want %#x", got, warm)
	}
	if len(walkList(h, 0)) != 300 {
		t.Fatal("Alice's structure damaged by collection")
	}

	// Bob's leaked blocks are reusable without growing the region.
	carol := m.Spawn()
	hdC := carol.NewHandle()
	for i := 0; i < 4000; i++ {
		if hdC.Malloc(64) == 0 {
			t.Fatal("OOM: leak not reclaimed")
		}
	}
	if h.SBUsed() > usedBefore {
		t.Fatalf("region grew from %d to %d", usedBefore, h.SBUsed())
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadProcessHandlePanics(t *testing.T) {
	h := crashHeap(t, 0)
	m := h.NewManager()
	p := m.Spawn()
	hd := p.NewHandle()
	m.Kill(p)
	defer func() {
		if recover() == nil {
			t.Fatal("dead process's handle must panic")
		}
	}()
	hd.Malloc(64)
}

func TestSpawnOnDeadProcessPanics(t *testing.T) {
	h := crashHeap(t, 0)
	m := h.NewManager()
	p := m.Spawn()
	m.Kill(p)
	defer func() {
		if recover() == nil {
			t.Fatal("NewHandle on dead process must panic")
		}
	}()
	p.NewHandle()
}

func TestCollectPinsCachesAcrossClasses(t *testing.T) {
	h := crashHeap(t, 0)
	m := h.NewManager()
	p := m.Spawn()
	hd := p.NewHandle()
	// Populate caches in several classes. Each first Malloc recharges the
	// cache with a whole superblock's worth of blocks, all of which must
	// be pinned.
	var cached []uint64
	for _, size := range []uint64{8, 64, 400, 4096} {
		b := hd.Malloc(size)
		hd.Free(b)
		cached = append(cached, b)
	}
	var expected uint64
	for c := range hd.cache {
		expected += uint64(len(hd.cache[c]))
	}
	stats, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != expected {
		t.Fatalf("pinned = %d, want %d (every cached block)", stats.ReachableBlocks, expected)
	}
	// Every cached block still pops back exactly once.
	for i := len(cached) - 1; i >= 0; i-- {
		sizes := []uint64{8, 64, 400, 4096}
		if got := hd.Malloc(sizes[i]); got != cached[i] {
			t.Fatalf("cache for size %d lost: %#x vs %#x", sizes[i], got, cached[i])
		}
	}
}

func TestCollectWithNoCrashIsHarmless(t *testing.T) {
	h := crashHeap(t, 0)
	m := h.NewManager()
	p := m.Spawn()
	hd := p.NewHandle()
	buildList(t, h, hd, 100, 0)
	h.GetRoot(0, nil)
	if _, err := m.Collect(); err != nil {
		t.Fatal(err)
	}
	if len(walkList(h, 0)) != 100 {
		t.Fatal("structure damaged by no-op collection")
	}
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedPartialCrashes(t *testing.T) {
	// Crash-and-collect in a loop: memory must not ratchet upward.
	h := crashHeap(t, 0)
	m := h.NewManager()
	owner := m.Spawn()
	hdO := owner.NewHandle()
	buildList(t, h, hdO, 200, 0)
	h.GetRoot(0, nil)
	if _, err := m.Collect(); err != nil { // establish baseline usage
		t.Fatal(err)
	}
	base := h.SBUsed()
	for round := 0; round < 5; round++ {
		p := m.Spawn()
		hd := p.NewHandle()
		for i := 0; i < 2000; i++ {
			hd.Malloc(64)
		}
		m.Kill(p)
		h.GetRoot(0, nil)
		if _, err := m.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	if h.SBUsed() > base+h.cfg.GrowthChunk {
		t.Fatalf("memory ratcheted: %d -> %d", base, h.SBUsed())
	}
	if len(walkList(h, 0)) != 200 {
		t.Fatal("owner's structure damaged")
	}
}

func TestConcurrentSharersThenCollect(t *testing.T) {
	h := crashHeap(t, 0)
	m := h.NewManager()
	const procs = 4
	var wg sync.WaitGroup
	victims := make([]*Process, procs)
	for i := 0; i < procs; i++ {
		victims[i] = m.Spawn()
	}
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(p *Process, seed int) {
			defer wg.Done()
			hd := p.NewHandle()
			for j := 0; j < 3000; j++ {
				off := hd.Malloc(64)
				if off == 0 {
					t.Error("OOM")
					return
				}
				if j%2 == 0 {
					hd.Free(off)
				}
			}
		}(victims[i], i)
	}
	wg.Wait()
	// Kill half, quiesce, collect.
	m.Kill(victims[0])
	m.Kill(victims[1])
	stats, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	_ = stats
	if _, err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Survivors keep allocating.
	hd := victims[2].NewHandle()
	for i := 0; i < 1000; i++ {
		if hd.Malloc(64) == 0 {
			t.Fatal("OOM after collection")
		}
	}
}
