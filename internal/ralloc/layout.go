// Package ralloc implements Ralloc, the nonblocking recoverable persistent
// allocator of Cai et al. (2020), over a simulated persistent-memory region.
//
// A Ralloc heap comprises three contiguous regions inside one pmem segment
// (paper Fig. 2):
//
//   - the metadata region (fixed size): dirty indicator, superblock-region
//     size and used watermark, the superblock free-list head, one record per
//     size class (block size), 1024 persistent roots, and the sharded
//     partial-list heads (one head word per size class per shard);
//   - the descriptor region: one 64-byte descriptor per superblock, the
//     locus of synchronization for that superblock;
//   - the superblock region: an array of 64 KB superblocks holding the
//     actual blocks, consumed in increasing address order on demand.
//
// During normal operation almost nothing is flushed: only the superblock
// region's used watermark, each superblock's size class and block size (once,
// when the superblock is initialized for a class), the persistent roots, and
// the dirty indicator — the bold fields of Fig. 2. Everything else (anchors,
// list links, thread caches) is transient and reconstructed by post-crash
// garbage collection (gc.go).
package ralloc

import "fmt"

const (
	// SuperblockBytes is the size of one superblock (64 KB, §4.2).
	SuperblockBytes = 1 << 16
	// DescBytes is the size of one descriptor, padded to a cache line.
	DescBytes = 64
	// MetaBytes is the fixed size of the metadata region.
	MetaBytes = 1 << 16
	// NumRoots is the number of persistent root slots (§4.2).
	NumRoots = 1024

	// heapMagic identifies an initialized Ralloc heap image ("RALLOC1\0").
	heapMagic = 0x0031434C4C4152
	// heapVersion is bumped on incompatible layout changes.
	// v2: partial-list heads moved from the size-class records into the
	// sharded head array at offShardHeads; shard count stored at offShards.
	// v3: dstruct hash-map nodes grew a third header word (the expiration
	// stamp), shifting key/value offsets — a v2 image's records would be
	// silently misread, so it must be rejected here instead.
	// v4: dstruct records carry a type tag in the top bits of the lengths
	// word (string | hash | list), with non-string payloads pointing at
	// secondary structures. The tag bits were always zero before, so a v3
	// image reads back under v4 as all-string with no migration pass:
	// attach accepts heapVersionCompat and stamps the image forward. Older
	// v4 *code* must not touch a heap that may contain tagged records,
	// which the forward stamp enforces.
	heapVersion = 4
	// heapVersionCompat is the oldest version attach upgrades in place.
	heapVersionCompat = 3

	// MaxShards bounds the number of partial-list shards per size class.
	// 64 shard sets of 40 head words each fit comfortably in the metadata
	// region after the roots (offShardHeads + 64*shardSetBytes < MetaBytes).
	MaxShards = 64
)

// Metadata-region field offsets (bytes from the start of the region).
const (
	offMagic    = 0
	offVersion  = 8
	offDirty    = 16 // dirty indicator (robust-mutex stand-in)
	offSBSize   = 24 // max size of the superblock region
	offSBUsed   = 32 // bytes of the superblock region in use  [flushed]
	offFreeHead = 40 // superblock free-list head (ABA-counted)

	offShards = 48 // partial-list shard count the stored lists were built for

	offClasses      = 64 // 40 size-class records
	classEntryBytes = 16 // blockSize, reserved (pre-v2 partial head)
	offRoots        = offClasses + 40*classEntryBytes
	// roots occupy NumRoots*8 = 8192 bytes; offRoots+8192 = 8896.

	// offShardHeads starts the sharded partial-list heads: MaxShards sets,
	// each holding one head word per size class. Laying the array out
	// shard-major keeps different shards' heads of the same class at least
	// shardSetBytes (320 B) apart, so contending handles never false-share
	// a cache line. 8896 + 64*320 = 29376 < MetaBytes.
	offShardHeads = offRoots + NumRoots*8
	shardSetBytes = 40 * 8 // one head per size-class record
)

// Descriptor field offsets (bytes from the start of the descriptor).
//
// Persisted fields (flushed before the superblock is used): class, blockSize
// and numSB — they share the descriptor's single cache line, so persisting
// them costs one flush. anchor, nextFree and nextPartial are transient.
const (
	dOffAnchor      = 0  // packed state/avail/count, updated with CAS
	dOffClass       = 8  // size-class index; 0 = large; contClass = run body
	dOffBlockSize   = 16 // block size in bytes (actual size for large)
	dOffNextFree    = 24 // next descriptor index+1 on the superblock free list
	dOffNextPartial = 32 // next descriptor index+1 on a partial list
	dOffNumSB       = 40 // for large runs: number of superblocks (first desc)
)

// contClass marks a descriptor whose superblock is the continuation (second
// or later superblock) of a large allocation run. It is persisted so that
// conservative GC can reject pointers into the middle of a run.
const contClass = 0xFF

// Superblock anchor states (§4.2).
const (
	stateEmpty   = 0 // all blocks free
	statePartial = 1 // some blocks free
	stateFull    = 2 // no blocks free
)

// Anchor packing: state in the top 2 bits, the index of the first free block
// in the next 31, the free count in the low 31. A superblock holds at most
// 8192 blocks, so 31 bits are ample for both fields.
const (
	anchorAvailNone = 0x7FFFFFFF // "no free block" index
	anchorFieldMask = 0x7FFFFFFF
)

func packAnchor(state uint64, avail, count uint32) uint64 {
	return state<<62 | uint64(avail)<<31 | uint64(count)
}

func unpackAnchor(a uint64) (state uint64, avail, count uint32) {
	return a >> 62, uint32(a>>31) & anchorFieldMask, uint32(a) & anchorFieldMask
}

// layout holds the derived geometry of a heap.
type layout struct {
	maxDescs  uint32 // number of descriptors / superblocks
	descStart uint64 // byte offset of the descriptor region
	sbStart   uint64 // byte offset of the superblock region
	sbSize    uint64 // max bytes of the superblock region
	total     uint64 // total region size
}

// computeLayout derives the region geometry for a superblock region of
// sbSize bytes (rounded up to whole superblocks).
func computeLayout(sbSize uint64) (layout, error) {
	if sbSize < SuperblockBytes {
		return layout{}, fmt.Errorf("ralloc: superblock region %d smaller than one superblock", sbSize)
	}
	sbSize = (sbSize + SuperblockBytes - 1) / SuperblockBytes * SuperblockBytes
	nDesc := sbSize / SuperblockBytes
	if nDesc > 1<<24 {
		return layout{}, fmt.Errorf("ralloc: superblock region %d exceeds the 1 TB limit", sbSize)
	}
	descBytes := (nDesc*DescBytes + SuperblockBytes - 1) / SuperblockBytes * SuperblockBytes
	// The superblock region sits directly after the metadata, with the
	// descriptor region *behind* it. This deviates from Fig. 2's drawing
	// order but preserves its key property under resizing (§4.1): the
	// superblock region's base never moves, so block offsets — including
	// the absolute offsets inside counter-tagged words — stay valid, and
	// only the descriptor region (pure indices, position-independent)
	// relocates.
	l := layout{
		maxDescs:  uint32(nDesc),
		descStart: MetaBytes + sbSize,
		sbStart:   MetaBytes,
		sbSize:    sbSize,
		total:     MetaBytes + descBytes + sbSize,
	}
	return l, nil
}

// classEntryOff returns the metadata offset of size-class record c.
func classEntryOff(c int) uint64 { return offClasses + uint64(c)*classEntryBytes }

// rootOff returns the metadata offset of persistent root slot i.
func rootOff(i int) uint64 { return offRoots + uint64(i)*8 }

// descOff returns the byte offset of descriptor idx.
func (l *layout) descOff(idx uint32) uint64 {
	return l.descStart + uint64(idx)*DescBytes
}

// sbOff returns the byte offset of superblock idx.
func (l *layout) sbOff(idx uint32) uint64 {
	return l.sbStart + uint64(idx)*SuperblockBytes
}

// descIndexOf maps a block offset to the index of its superblock descriptor
// ("found via bit manipulation", §4.4).
func (l *layout) descIndexOf(off uint64) (uint32, bool) {
	if off < l.sbStart || off >= l.sbStart+l.sbSize {
		return 0, false
	}
	return uint32((off - l.sbStart) / SuperblockBytes), true
}
