package ralloc

import (
	"math/rand"
	"testing"

	"repro/internal/sizeclass"
)

// Model-based testing: drive the allocator with random operation sequences
// while maintaining a reference model of the live block set, checking after
// every operation that new blocks never overlap live ones and that frees
// only ever release live blocks. This complements the targeted tests with
// breadth: size mixes, large/small interleavings, exhaustion and reuse.

type liveModel struct {
	t *testing.T
	// live maps block start -> extent end (exclusive).
	live map[uint64]uint64
}

func (m *liveModel) add(off, size uint64) {
	end := off + size
	for lo, hi := range m.live {
		if off < hi && lo < end {
			m.t.Fatalf("new block [%#x,%#x) overlaps live [%#x,%#x)", off, end, lo, hi)
		}
	}
	m.live[off] = end
}

func (m *liveModel) remove(off uint64) {
	if _, ok := m.live[off]; !ok {
		m.t.Fatalf("model: freeing unknown block %#x", off)
	}
	delete(m.live, off)
}

func TestModelRandomOps(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 1313))
		h := testHeap(t, Config{SBRegion: 16 << 20, GrowthChunk: 1 << 20})
		hd := h.NewHandle()
		model := &liveModel{t: t, live: map[uint64]uint64{}}
		var order []uint64

		for op := 0; op < 4000; op++ {
			switch {
			case len(order) > 0 && rng.Intn(5) == 0: // free
				k := rng.Intn(len(order))
				off := order[k]
				order[k] = order[len(order)-1]
				order = order[:len(order)-1]
				model.remove(off)
				hd.Free(off)
			default: // malloc, mixed sizes incl. occasional large
				var size uint64
				switch rng.Intn(10) {
				case 9:
					size = uint64(15000 + rng.Intn(120000)) // large
				case 8:
					size = uint64(1024 + rng.Intn(13312)) // big small
				default:
					size = uint64(1 + rng.Intn(1024))
				}
				off := hd.Malloc(size)
				if off == 0 {
					// Exhaustion is legal; free something and go on.
					if len(order) == 0 {
						t.Fatal("OOM with nothing live")
					}
					continue
				}
				extent := sizeclass.Round(size)
				if sizeclass.SizeToClass(size) == 0 {
					extent = (size + SuperblockBytes - 1) / SuperblockBytes * SuperblockBytes
				}
				model.add(off, extent)
				order = append(order, off)
				// Scribble over the block: neighbors must not care.
				h.Region().Store(off, ^off)
				if extent >= 16 {
					h.Region().Store(off+extent-8, off)
				}
			}
		}
		// Verify the scribbles survived all the neighboring churn.
		for off, end := range model.live {
			if got := h.Region().Load(off); got != ^off {
				t.Fatalf("trial %d: block %#x first word clobbered: %#x", trial, off, got)
			}
			if end-off >= 16 {
				if got := h.Region().Load(end - 8); got != off {
					t.Fatalf("trial %d: block %#x last word clobbered: %#x", trial, off, got)
				}
			}
		}
		if _, err := h.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestModelFreeAllThenReuseEverything(t *testing.T) {
	// After freeing every live block, the allocator must be able to serve
	// the same demand again without growing the region (global leak
	// check, stronger than per-superblock retirement).
	h := testHeap(t, Config{SBRegion: 16 << 20, GrowthChunk: 1 << 20})
	hd := h.NewHandle()
	run := func() uint64 {
		rng := rand.New(rand.NewSource(77))
		var offs []uint64
		for i := 0; i < 3000; i++ {
			off := hd.Malloc(uint64(1 + rng.Intn(2048)))
			if off == 0 {
				t.Fatal("OOM")
			}
			offs = append(offs, off)
		}
		for _, off := range offs {
			hd.Free(off)
		}
		return h.SBUsed()
	}
	used1 := run()
	used2 := run()
	if used2 > used1 {
		t.Fatalf("second identical run grew the heap: %d -> %d", used1, used2)
	}
}
