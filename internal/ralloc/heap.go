package ralloc

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

// Config controls a heap instance.
type Config struct {
	// SBRegion is the maximum size of the superblock region in bytes
	// (the `size` argument of the paper's init()). Default 64 MB.
	SBRegion uint64
	// GrowthChunk is the increment by which the used portion of the
	// superblock region is expanded (the paper uses 1 GB; our default is
	// 4 MB so tests and examples stay small — §4.4 notes the expansion
	// size does not significantly change performance).
	GrowthChunk uint64
	// NoFlush disables all flush and fence instructions, turning Ralloc
	// back into its transient ancestor LRMalloc (the paper's LRMalloc
	// baseline is exactly "Ralloc without flush and fence", §6.1).
	NoFlush bool
	// ReturnHalf makes an overflowing thread cache return only half of
	// its blocks to the superblocks instead of all of them. The default
	// (false) is Ralloc's published behavior; true is the Makalu-style
	// policy the paper credits for better locality on memcached (§6.3) —
	// exposed here for the ablation experiment.
	ReturnHalf bool
	// CacheCap caps each per-class thread cache; 0 means one superblock's
	// worth of blocks, LRMalloc's natural refill unit.
	CacheCap int
	// Shards is the number of independent partial-list shards per size
	// class (a power of two, at most MaxShards; other values are rounded
	// up/clamped). Handles are pinned round-robin to a home shard and
	// steal from the others on miss, so concurrent handles contend on
	// distinct list heads. 0 selects a power of two near GOMAXPROCS;
	// Shards=1 reproduces the paper's single global partial list.
	Shards int
	// UnbatchedFree disables batched remote frees: an overflowing thread
	// cache returns blocks with one anchor CAS per block (the paper's
	// published behavior, §4.2) instead of one CAS per superblock group.
	// Exposed for the contended-free ablation.
	UnbatchedFree bool
	// Pmem configures the underlying simulated persistent region.
	Pmem pmem.Config
}

func (c Config) withDefaults() Config {
	if c.SBRegion == 0 {
		c.SBRegion = 64 << 20
	}
	if c.GrowthChunk == 0 {
		c.GrowthChunk = 4 << 20
	}
	c.GrowthChunk = (c.GrowthChunk + SuperblockBytes - 1) / SuperblockBytes * SuperblockBytes
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > MaxShards {
		c.Shards = MaxShards
	}
	for c.Shards&(c.Shards-1) != 0 {
		c.Shards++
	}
	return c
}

// Heap is a Ralloc persistent heap. All methods except NewHandle/handle
// operations are safe for concurrent use; Malloc and Free go through
// per-goroutine Handles.
type Heap struct {
	region *pmem.Region
	cfg    Config
	lay    layout
	path   string

	shards    uint32 // partial-list shards per class (power of two)
	shardMask uint32 // shards - 1
	nextShard atomic.Uint32

	// stats are the per-shard slow-path telemetry counters (stats.go).
	// Fixed-size so no (re)allocation is needed across setShards; only
	// the first `shards` entries are written.
	stats [MaxShards]shardCounters

	mu      sync.Mutex // guards handles and filters
	handles []*Handle
	filters [NumRoots]Filter
	closed  bool
}

// ErrClosed is returned by operations on a closed heap.
var ErrClosed = errors.New("ralloc: heap is closed")

// Open creates or reopens a Ralloc heap.
//
// If path is empty the heap is volatile-backed (in-memory region only, still
// with full crash simulation if cfg.Pmem.Mode is ModeCrashSim). If path names
// an existing image the heap is re-mapped from it; otherwise a fresh heap is
// created (and will be saved to path by Close).
//
// The returned dirty flag reports whether the previous session ended without
// a clean Close — the paper's init() returning true, meaning the caller must
// register its roots with GetRoot and then call Recover before allocating.
func Open(path string, cfg Config) (h *Heap, dirty bool, err error) {
	cfg = cfg.withDefaults()
	lay, err := computeLayout(cfg.SBRegion)
	if err != nil {
		return nil, false, err
	}

	if path != "" {
		if _, statErr := os.Stat(path); statErr == nil {
			region, err := pmem.LoadFile(path, cfg.Pmem)
			if err != nil {
				return nil, false, err
			}
			return attach(region, cfg, path)
		}
	}

	region := pmem.NewRegion(lay.total, cfg.Pmem)
	h = &Heap{region: region, cfg: cfg, lay: lay, path: path}
	h.setShards(uint32(cfg.Shards))
	h.initialize()
	return h, false, nil
}

func (h *Heap) setShards(n uint32) {
	h.shards = n
	h.shardMask = n - 1
}

// Attach re-attaches to an existing region (for example after a simulated
// crash followed by reconstruction of the process, or to demonstrate
// position independence by re-mapping a loaded image). It performs the same
// dirty-flag protocol as Open.
func Attach(region *pmem.Region, cfg Config) (*Heap, bool, error) {
	return attach(region, cfg.withDefaults(), "")
}

func attach(region *pmem.Region, cfg Config, path string) (*Heap, bool, error) {
	if region.Load(offMagic) != heapMagic {
		return nil, false, fmt.Errorf("ralloc: region does not contain a Ralloc heap")
	}
	version := region.Load(offVersion)
	if version != heapVersion && version != heapVersionCompat {
		return nil, false, fmt.Errorf("ralloc: heap version %d, want %d (or compatible %d)",
			version, heapVersion, heapVersionCompat)
	}
	sbSize := region.Load(offSBSize)
	lay, err := computeLayout(sbSize)
	if err != nil {
		return nil, false, err
	}
	if lay.total != region.Size() {
		return nil, false, fmt.Errorf("ralloc: region size %d does not match layout %d", region.Size(), lay.total)
	}
	cfg.SBRegion = sbSize
	h := &Heap{region: region, cfg: cfg, lay: lay, path: path}
	h.setShards(uint32(cfg.Shards))
	wasDirty := region.Load(offDirty) != 0
	stored := region.Load(offShards)
	if stored < 1 || stored > MaxShards || stored&(stored-1) != 0 {
		return nil, false, fmt.Errorf("ralloc: corrupt shard count %d in heap image", stored)
	}
	// Set the dirty indicator for this session (cleared again by Close)
	// *before* touching the lists below: a crash mid-remap must trigger
	// recovery on the next attach, not leak the descriptors in flight.
	h.setDirty(1)
	// A compatible older image (v3, pre-object all-string records) is
	// stamped forward: this session may write tagged records, and pre-v4
	// code would silently misread them, so it must refuse the heap from
	// here on. The stamp is durable before any allocation can happen.
	if version != heapVersion {
		region.Store(offVersion, heapVersion)
		h.flush(offVersion)
		h.fence()
	}
	// Reconcile the configured shard count with the geometry the stored
	// lists were built under. A clean image's lists are remapped in place;
	// a dirty image's lists are transient garbage that the mandatory
	// Recover rebuilds under the new count anyway.
	if uint32(stored) != h.shards {
		if !wasDirty {
			h.remapShards(uint32(stored))
		}
		region.Store(offShards, uint64(h.shards))
		h.flush(offShards)
		h.fence()
	}
	return h, wasDirty, nil
}

// initialize formats a fresh heap image.
func (h *Heap) initialize() {
	r := h.region
	r.Store(offSBSize, h.lay.sbSize)
	r.Store(offSBUsed, 0)
	r.Store(offFreeHead, pptr.HeadNil)
	r.Store(offShards, uint64(h.shards))
	for c := 0; c <= sizeclass.NumClasses; c++ {
		e := classEntryOff(c)
		r.Store(e, sizeclass.ClassToSize(c))
		r.Store(e+8, pptr.HeadNil) // reserved (pre-v2 partial head)
		for s := uint32(0); s < MaxShards; s++ {
			r.Store(partialHeadOff(c, s), pptr.HeadNil)
		}
	}
	for i := 0; i < NumRoots; i++ {
		r.Store(rootOff(i), pptr.Nil)
	}
	r.Store(offVersion, heapVersion)
	r.Store(offDirty, 1)
	r.Store(offMagic, heapMagic)
	h.flushRange(0, MetaBytes)
	h.fence()
}

func (h *Heap) setDirty(v uint64) {
	h.region.Store(offDirty, v)
	h.flush(offDirty)
	h.fence()
}

// flush writes back the line containing off unless persistence is disabled.
func (h *Heap) flush(off uint64) {
	if !h.cfg.NoFlush {
		h.region.Flush(off)
	}
}

func (h *Heap) flushRange(off, n uint64) {
	if !h.cfg.NoFlush {
		h.region.FlushRange(off, n)
	}
}

func (h *Heap) fence() {
	if !h.cfg.NoFlush {
		h.region.Fence()
	}
}

// Region exposes the heap's underlying memory.
func (h *Heap) Region() *pmem.Region { return h.region }

// Layout accessors used by data structures and tests.

// SBStart returns the byte offset where the superblock region begins.
func (h *Heap) SBStart() uint64 { return h.lay.sbStart }

// SBUsed returns the current used watermark of the superblock region.
func (h *Heap) SBUsed() uint64 { return h.region.Load(offSBUsed) }

// Name implements alloc.Allocator.
func (h *Heap) Name() string {
	if h.cfg.NoFlush {
		return "lrmalloc"
	}
	return "ralloc"
}

// ----------------------------------------------------------------------
// Persistent roots (§4.1).

// SetRoot registers off as persistent root i (off may be 0 to clear). Roots
// are stored as off-holders and flushed immediately: they are the anchors of
// post-crash tracing.
func (h *Heap) SetRoot(i int, off uint64) {
	if i < 0 || i >= NumRoots {
		panic("ralloc: root index out of range")
	}
	slot := rootOff(i)
	if off == 0 {
		h.region.Store(slot, pptr.Nil)
	} else {
		h.region.Store(slot, pptr.Pack(slot, off))
	}
	h.flush(slot)
	h.fence()
}

// GetRoot returns the block registered as root i (0 if unset) and associates
// filter f with the root for use by the next Recover. Passing a nil filter
// selects conservative tracing for the structure. Mirroring the paper's
// getRoot<T>(), the filter association is transient and must be re-established
// (by calling GetRoot) after every restart, before Recover.
func (h *Heap) GetRoot(i int, f Filter) uint64 {
	if i < 0 || i >= NumRoots {
		panic("ralloc: root index out of range")
	}
	h.mu.Lock()
	h.filters[i] = f
	h.mu.Unlock()
	slot := rootOff(i)
	v := h.region.Load(slot)
	off, ok := pptr.Unpack(slot, v)
	if !ok {
		return 0
	}
	return off
}

// ----------------------------------------------------------------------
// Growth of the used superblock region (§4.3).

// grow expands the used watermark by at least want bytes (rounded up to the
// growth chunk when possible) and returns the index of the first new
// superblock and the number of superblocks obtained. ok=false means the heap
// is exhausted.
func (h *Heap) grow(want uint64) (first uint32, count uint32, ok bool) {
	r := h.region
	for {
		used := r.Load(offSBUsed)
		remaining := h.lay.sbSize - used
		if remaining < want {
			return 0, 0, false
		}
		take := h.cfg.GrowthChunk
		if take < want {
			take = want
		}
		if take > remaining {
			take = remaining
			if take < want {
				return 0, 0, false
			}
		}
		if r.CAS(offSBUsed, used, used+take) {
			// Persist the watermark before any block in the new
			// space can be handed out (§4.3: "with an explicit
			// flush and fence").
			h.flush(offSBUsed)
			h.fence()
			return uint32(used / SuperblockBytes), uint32(take / SuperblockBytes), true
		}
	}
}

// usedDescs returns the number of descriptors whose superblocks are within
// the used watermark.
func (h *Heap) usedDescs() uint32 {
	return uint32(h.region.Load(offSBUsed) / SuperblockBytes)
}

// ----------------------------------------------------------------------
// Handles and shutdown.

// NewHandle returns a fresh per-goroutine allocation context, pinned
// round-robin to a home partial-list shard.
func (h *Heap) NewHandle() *Handle {
	hd := &Handle{heap: h, shard: (h.nextShard.Add(1) - 1) & h.shardMask}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		panic(ErrClosed)
	}
	h.handles = append(h.handles, hd)
	h.mu.Unlock()
	return hd
}

// dropHandles invalidates all handles (crash recovery discards caches: the
// blocks they held are reclaimed by GC, exactly as the paper's transient
// thread caches are lost in a crash).
func (h *Heap) dropHandles() {
	h.mu.Lock()
	for _, hd := range h.handles {
		hd.invalid = true
	}
	h.handles = nil
	h.mu.Unlock()
}

// Close cleanly shuts the allocator down (the paper's close()): all blocks
// held in thread caches are returned to their superblocks, the heap is
// written back to NVM, the dirty indicator is cleared, and — if the heap is
// file-backed — the image is saved.
//
// If the final save fails, the dirty indicator is restored before the error
// is returned: the on-disk image (if any) predates this shutdown, so the
// session must not be recorded as a clean close. The heap stays closed; the
// caller can retry persistence via Region().SaveFile.
func (h *Heap) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	h.closed = true
	handles := h.handles
	h.handles = nil
	h.mu.Unlock()

	for _, hd := range handles {
		hd.returnAll()
		hd.invalid = true
	}
	// Write back the whole heap for fast clean restart.
	h.region.Persist()
	h.setDirty(0)
	h.region.Persist()
	if h.path != "" {
		if err := h.region.SaveFile(h.path); err != nil {
			h.setDirty(1)
			return fmt.Errorf("ralloc: close: saving heap image: %w", err)
		}
	}
	return nil
}
