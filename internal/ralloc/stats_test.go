package ralloc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sizeclass"
)

// sumShardStats aggregates every shard's counters for whole-heap assertions.
func sumShardStats(h *Heap) ShardStats {
	var total ShardStats
	for _, s := range h.ShardStats() {
		total.Refills += s.Refills
		total.RefillBlocks += s.RefillBlocks
		total.Steals += s.Steals
		total.Grows += s.Grows
		total.Drains += s.Drains
		total.FreeBatches += s.FreeBatches
		total.FreeBlocks += s.FreeBlocks
		total.PartialSBs += s.PartialSBs
	}
	return total
}

// TestShardStatsCounters drives every instrumented slow path — grow, refill,
// drain, remote-free batching, cross-shard stealing — and checks the shard
// counters move. Steal forcing: handle B (home shard 1) leaves a partial
// superblock on its own shard, then handle A (home shard 0, empty cache,
// empty shard-0 lists) must steal it on refill.
func TestShardStatsCounters(t *testing.T) {
	h := testHeap(t, Config{Shards: 2, CacheCap: 8})
	hdA := h.NewHandle() // shard 0 (round-robin from 0)
	hdB := h.NewHandle() // shard 1
	if hdA.shard != 0 || hdB.shard != 1 {
		t.Fatalf("handle shards = %d,%d; want 0,1", hdA.shard, hdB.shard)
	}

	// B allocates a batch and frees half of it: the superblock stays
	// partial, and the cap-8 cache forces drains (and their free batches)
	// through the global lists onto shard 1.
	var offs []uint64
	for i := 0; i < 128; i++ {
		off := hdB.Malloc(64)
		if off == 0 {
			t.Fatal("OOM")
		}
		offs = append(offs, off)
	}
	for i := 0; i < len(offs); i += 2 {
		hdB.Free(offs[i])
	}
	hdB.drain(sizeclass.SizeToClass(64))

	mid := sumShardStats(h)
	if mid.Grows == 0 {
		t.Fatal("no region grow counted after first allocation")
	}
	if mid.Refills == 0 || mid.RefillBlocks == 0 {
		t.Fatalf("refills=%d refill_blocks=%d after allocation churn", mid.Refills, mid.RefillBlocks)
	}
	if mid.Drains == 0 || mid.FreeBatches == 0 || mid.FreeBlocks == 0 {
		t.Fatalf("drains=%d free_batches=%d free_blocks=%d after frees", mid.Drains, mid.FreeBatches, mid.FreeBlocks)
	}
	if got := sumShardStats(h).PartialSBs; got == 0 {
		t.Fatal("partial superblock not visible in ShardStats")
	}

	// A's refill finds shard 0 empty and must steal B's partial superblock;
	// the steal is charged to the thief's home shard (0).
	if hdA.Malloc(64) == 0 {
		t.Fatal("OOM on stealing refill")
	}
	after := h.ShardStats()
	if after[0].Steals == 0 {
		t.Fatalf("no steal counted on shard 0: %+v", after)
	}
	if sumShardStats(h).Refills <= mid.Refills {
		t.Fatal("stealing refill not counted as a refill")
	}
}

// TestHeapCollectMetrics renders the heap's Prometheus families through a
// registry and checks the per-shard labeling survives the text encoding.
func TestHeapCollectMetrics(t *testing.T) {
	h := testHeap(t, Config{Shards: 2})
	hd := h.NewHandle()
	for i := 0; i < 100; i++ {
		if hd.Malloc(64) == 0 {
			t.Fatal("OOM")
		}
	}
	reg := obs.NewRegistry()
	reg.Register(h)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE ralloc_allocator_refills_total counter",
		`ralloc_allocator_refills_total{shard="0"}`,
		`ralloc_allocator_refills_total{shard="1"}`,
		"# TYPE ralloc_allocator_partial_superblocks gauge",
		"ralloc_allocator_sb_used_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
}
