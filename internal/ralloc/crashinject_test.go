package ralloc

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/pptr"
)

// Mid-operation crash injection: the pmem StoreHook panics after a chosen
// number of stores, so the "power fails" inside malloc, free, cache drains,
// superblock initialization, region growth — anywhere, not just at
// operation boundaries. Recovery must still satisfy recoverability from
// whatever survived write-back.

type injectedCrash struct{ store int }

// runWithCrashAt builds a heap, durably constructs a base list, then runs a
// mutation phase with the hook armed to blow up at the k-th store. It
// returns the heap (post-simulated-crash) and how many nodes had been
// durably attached to root 1 before the explosion.
func runWithCrashAt(t *testing.T, k int, evict float64) (*Heap, int) {
	t.Helper()
	var countdown int
	armed := false
	cfg := Config{
		SBRegion:    8 << 20,
		GrowthChunk: 1 << 20,
		Pmem: pmem.Config{
			Mode:      pmem.ModeCrashSim,
			EvictProb: evict,
			Seed:      int64(k) + 1,
			StoreHook: func() {
				if !armed {
					return
				}
				countdown--
				if countdown == 0 {
					panic(injectedCrash{k})
				}
			},
		},
	}
	h, _, err := Open("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	hd := h.NewHandle()
	buildList(t, h, hd, 50, 0) // durable base structure on root 0

	attached := 0
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return // k was larger than the phase's store count
			}
			if _, ok := r.(injectedCrash); !ok {
				panic(r) // a real bug, re-raise
			}
		}()
		countdown = k
		armed = true
		r := h.Region()
		var prev uint64
		for i := 0; i < 200; i++ {
			// Churn: allocate, sometimes free.
			tmp := hd.Malloc(48)
			if i%3 == 0 {
				hd.Free(tmp)
			}
			// Durably extend a second list on root 1.
			n := hd.Malloc(64)
			if prev == 0 {
				r.Store(n, pptr.Nil)
			} else {
				r.Store(n, pptr.Pack(n, prev))
			}
			r.Store(n+8, uint64(i))
			r.FlushRange(n, 16)
			r.Fence()
			h.SetRoot(1, n)
			prev = n
			attached = i + 1
		}
	}()
	armed = false
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	return h, attached
}

func TestCrashInjectionSweep(t *testing.T) {
	// Crash after 1, 2, 3, ... stores into the mutation phase, covering
	// every store boundary of the first operations and then coarser
	// strides deep into the phase.
	points := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 20, 30, 50,
		80, 130, 210, 340, 550, 890, 1440, 2330}
	for _, k := range points {
		h, attached := runWithCrashAt(t, k, 0)
		h.GetRoot(0, nil)
		h.GetRoot(1, nil)
		if _, err := h.Recover(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Base list must be fully intact.
		if got := len(walkList(h, 0)); got != 50 {
			t.Fatalf("k=%d: base list has %d nodes, want 50", k, got)
		}
		// The durable prefix of the second list must survive: the walk
		// from root 1 sees consecutive descending indices.
		r := h.Region()
		second := walkList(h, 1)
		if len(second) > attached {
			t.Fatalf("k=%d: second list longer (%d) than ever attached (%d)",
				k, len(second), attached)
		}
		for i, off := range second {
			want := uint64(len(second) - 1 - i)
			if got := r.Load(off + 8); got != want {
				t.Fatalf("k=%d: second list node %d has value %d, want %d",
					k, i, got, want)
			}
		}
		// Allocator must be fully consistent and usable.
		if _, err := h.CheckInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		hd := h.NewHandle()
		for i := 0; i < 500; i++ {
			if hd.Malloc(64) == 0 {
				t.Fatalf("k=%d: OOM after recovery", k)
			}
		}
	}
}

func TestCrashInjectionWithEviction(t *testing.T) {
	// Same sweep, but half the unflushed lines happen to persist —
	// recovery must cope with *more* than the program flushed, too.
	for _, k := range []int{3, 17, 64, 257, 1025} {
		h, _ := runWithCrashAt(t, k, 0.5)
		h.GetRoot(0, nil)
		h.GetRoot(1, nil)
		if _, err := h.Recover(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := len(walkList(h, 0)); got != 50 {
			t.Fatalf("k=%d: base list has %d nodes, want 50", k, got)
		}
		if _, err := h.CheckInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestCrashInjectionParallelRecovery(t *testing.T) {
	for _, k := range []int{5, 100, 900} {
		h, _ := runWithCrashAt(t, k, 0)
		h.GetRoot(0, nil)
		h.GetRoot(1, nil)
		if _, err := h.RecoverParallel(4); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := len(walkList(h, 0)); got != 50 {
			t.Fatalf("k=%d: base list has %d nodes, want 50", k, got)
		}
		if _, err := h.CheckInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}
