// Package pmdk models Intel PMDK's libpmemobj allocator, the second
// persistent baseline of the paper's evaluation.
//
// PMDK exemplifies the alternative to GC-based recovery (§1): the allocator
// provides a malloc-to operation that allocates a block and, atomically,
// attaches it persistently at a specified address; free-from breaks the
// last persistent pointer and, atomically, returns the block to the free
// list. Atomicity is achieved with a persistent redo log: every operation
// writes its intended stores to the log, flushes and fences it, marks it
// valid (flush, fence), applies the stores (flush, fence), and retires the
// log (flush, fence). Recovery replays or discards the log — no GC needed,
// because the allocator metadata is always crash-consistent.
//
// That is precisely why PMDK pays several flushes and fences on every
// allocation (§6.2), which — together with its lock-protected buckets — is
// the behavior this model reproduces.
//
// The paper's benchmarks drive PMDK through plain malloc/free by attaching
// to a dummy variable (§6.1); Handle.Malloc/Free do the same via a
// per-handle persistent scratch slot.
package pmdk

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

const (
	offMagic    = 0
	offDirty    = 8
	offBump     = 16
	offEnd      = 24
	offLarge    = 32
	offLogValid = 40
	offLogCount = 48
	offLogEnts  = 64  // up to maxLogEnts pairs of [target, value]
	maxLogEnts  = 8   // 8 × 16 B = 128 B of log
	offClass    = 256 // 40 entries × 16 B
	offScratch  = 1024
	maxHandles  = 256 // scratch slots, 8 B each → 2 KB
	offRoots    = 4096
	numRoots    = 1024

	ChunkBytes = 1 << 16
	carveOff   = ChunkBytes
	chunkHdr   = 64

	chunkSmall = 1
	chunkLarge = 2
	chunkCont  = 3

	pmdkMagic = 0x314B444D50 // "PMDK1"
)

// Config controls the model.
type Config struct {
	HeapSize uint64 // default 64 MB
	Pmem     pmem.Config
}

// Heap is a PMDK-model pool ("pmemobj pool").
type Heap struct {
	region *pmem.Region
	end    uint64

	// One big lock serializes allocator metadata and the redo log —
	// deliberately coarse: the paper shows PMDK scaling flat.
	opMu sync.Mutex

	mu       sync.Mutex
	nHandles int
	closed   bool
}

// New creates a fresh pool.
func New(cfg Config) (*Heap, error) {
	if cfg.HeapSize == 0 {
		cfg.HeapSize = 64 << 20
	}
	if cfg.HeapSize < carveOff+ChunkBytes {
		return nil, errors.New("pmdk: heap too small")
	}
	region := pmem.NewRegion(cfg.HeapSize/ChunkBytes*ChunkBytes, cfg.Pmem)
	h := &Heap{region: region, end: region.Size()}
	region.Store(offEnd, h.end)
	region.Store(offBump, carveOff)
	region.Store(offDirty, 1)
	region.Store(offMagic, pmdkMagic)
	region.FlushRange(0, offRoots+numRoots*8)
	region.Fence()
	return h, nil
}

// Attach re-attaches to an existing region image. If the previous session
// crashed mid-operation, the redo log is resolved immediately — PMDK-style
// recovery is just log replay, reported via the dirty flag for symmetry
// with the other allocators.
func Attach(region *pmem.Region) (*Heap, bool, error) {
	if region.Load(offMagic) != pmdkMagic {
		return nil, false, errors.New("pmdk: region is not a PMDK pool")
	}
	h := &Heap{region: region, end: region.Load(offEnd)}
	dirty := region.Load(offDirty) != 0
	region.Store(offDirty, 1)
	region.Flush(offDirty)
	region.Fence()
	return h, dirty, nil
}

// Name implements alloc.Allocator.
func (h *Heap) Name() string { return "pmdk" }

// Region implements alloc.Allocator.
func (h *Heap) Region() *pmem.Region { return h.region }

func classHeadOff(c int) uint64 { return offClass + uint64(c)*16 }
func rootOff(i int) uint64      { return offRoots + uint64(i)*8 }

func chunkStart(off uint64) uint64 { return off &^ (ChunkBytes - 1) }

func blocksPerChunk(blockSize uint64) uint64 {
	return (ChunkBytes - chunkHdr) / blockSize
}

// ----------------------------------------------------------------------
// Redo log. Callers hold opMu.

type logEntry struct{ target, value uint64 }

// applyLogged runs one failure-atomic metadata transaction: log → validate →
// apply → retire, with the flush/fence pattern PMDK uses. This is the
// per-operation persistence cost of the malloc-to approach.
func (h *Heap) applyLogged(ents []logEntry) {
	if len(ents) > maxLogEnts {
		panic("pmdk: redo log overflow")
	}
	r := h.region
	for i, e := range ents {
		r.Store(offLogEnts+uint64(i)*16, e.target)
		r.Store(offLogEnts+uint64(i)*16+8, e.value)
	}
	r.Store(offLogCount, uint64(len(ents)))
	r.FlushRange(offLogCount, 8+uint64(len(ents))*16)
	r.Fence()
	r.Store(offLogValid, 1)
	r.Flush(offLogValid)
	r.Fence()
	for _, e := range ents {
		r.Store(e.target, e.value)
		r.Flush(e.target)
	}
	r.Fence()
	r.Store(offLogValid, 0)
	r.Flush(offLogValid)
	r.Fence()
}

// replayLog resolves a valid redo log found at attach time.
func (h *Heap) replayLog() {
	r := h.region
	if r.Load(offLogValid) == 0 {
		return
	}
	n := r.Load(offLogCount)
	if n > maxLogEnts {
		n = maxLogEnts
	}
	for i := uint64(0); i < n; i++ {
		t := r.Load(offLogEnts + i*16)
		v := r.Load(offLogEnts + i*16 + 8)
		r.Store(t, v)
		r.Flush(t)
	}
	r.Fence()
	r.Store(offLogValid, 0)
	r.Flush(offLogValid)
	r.Fence()
}

// Recover implements alloc.Recoverable: replay (or discard) the redo log.
// Unlike the GC-based allocators, nothing else is needed — and also unlike
// them, any block whose attach pointer the application had not yet made
// persistent stays leaked forever; that is the trade-off the paper's
// recoverability-with-GC design removes.
func (h *Heap) Recover() error {
	h.opMu.Lock()
	defer h.opMu.Unlock()
	h.replayLog()
	return nil
}

// ----------------------------------------------------------------------
// Allocation.

// MallocTo allocates size bytes and atomically stores an off-holder to the
// new block at destOff (the paper's malloc-to). Returns the block offset or
// 0 when exhausted.
func (h *Heap) MallocTo(size uint64, destOff uint64) uint64 {
	r := h.region
	h.opMu.Lock()
	defer h.opMu.Unlock()

	c := sizeclass.SizeToClass(size)
	var block uint64
	var ents []logEntry
	if c != 0 {
		head := classHeadOff(c)
		block = r.Load(head)
		if block == 0 {
			if !h.carveSmallLocked(c) {
				return 0
			}
			block = r.Load(head)
			if block == 0 {
				return 0
			}
		}
		ents = append(ents, logEntry{head, r.Load(block)})
	} else {
		block = h.findLargeLocked(size)
		if block == 0 {
			return 0
		}
		// findLargeLocked already unlinked the run inside its own
		// logged transaction.
	}
	ents = append(ents, logEntry{destOff, pptr.Pack(destOff, block)})
	h.applyLogged(ents)
	return block
}

// FreeFrom atomically clears the persistent pointer at holderOff and returns
// the block it referenced to the free list (the paper's free-from).
func (h *Heap) FreeFrom(holderOff uint64) {
	r := h.region
	h.opMu.Lock()
	defer h.opMu.Unlock()

	block, ok := pptr.Unpack(holderOff, r.Load(holderOff))
	if !ok {
		panic(fmt.Sprintf("pmdk: FreeFrom(%#x): no persistent pointer there", holderOff))
	}
	chunk := chunkStart(block)
	kind := r.Load(chunk)
	var ents []logEntry
	switch kind {
	case chunkSmall:
		c := sizeclass.SizeToClass(r.Load(chunk + 8))
		head := classHeadOff(c)
		ents = append(ents,
			logEntry{block, r.Load(head)},
			logEntry{head, block},
			logEntry{holderOff, pptr.Nil})
	case chunkLarge:
		ents = append(ents,
			logEntry{block, r.Load(offLarge)},
			logEntry{offLarge, block},
			logEntry{holderOff, pptr.Nil})
	default:
		panic(fmt.Sprintf("pmdk: FreeFrom(%#x): block %#x not allocated", holderOff, block))
	}
	h.applyLogged(ents)
}

// carveSmallLocked carves one chunk for class c and chains its blocks onto
// the class free list. Caller holds opMu.
func (h *Heap) carveSmallLocked(c int) bool {
	r := h.region
	blockSize := sizeclass.ClassToSize(c)
	bump := r.Load(offBump)
	if bump+ChunkBytes > h.end {
		return false
	}
	r.Store(offBump, bump+ChunkBytes)
	r.Flush(offBump)
	chunk := bump
	r.Store(chunk, chunkSmall)
	r.Store(chunk+8, blockSize)
	r.Store(chunk+16, 1)
	r.Flush(chunk)
	r.Fence()
	head := classHeadOff(c)
	total := blocksPerChunk(blockSize)
	prev := r.Load(head)
	for i := total; i > 0; i-- {
		b := chunk + chunkHdr + (i-1)*blockSize
		r.Store(b, prev)
		prev = b
	}
	r.FlushRange(chunk, ChunkBytes)
	r.Store(head, prev)
	r.Flush(head)
	r.Fence()
	return true
}

// findLargeLocked finds or carves a run of chunks for a large request and
// unlinks it from the free list under the redo log. Caller holds opMu.
func (h *Heap) findLargeLocked(size uint64) uint64 {
	r := h.region
	nChunks := (size + chunkHdr + ChunkBytes - 1) / ChunkBytes
	prev := uint64(offLarge)
	b := r.Load(offLarge)
	for b != 0 {
		chunk := chunkStart(b)
		if r.Load(chunk+16) >= nChunks {
			h.applyLogged([]logEntry{{prev, r.Load(b)}})
			return b
		}
		prev = b
		b = r.Load(b)
	}
	bump := r.Load(offBump)
	if bump+nChunks*ChunkBytes > h.end {
		return 0
	}
	r.Store(offBump, bump+nChunks*ChunkBytes)
	r.Flush(offBump)
	chunk := bump
	for i := uint64(1); i < nChunks; i++ {
		cc := chunk + i*ChunkBytes
		r.Store(cc, chunkCont)
		r.Flush(cc)
	}
	r.Store(chunk, chunkLarge)
	r.Store(chunk+8, size)
	r.Store(chunk+16, nChunks)
	r.Flush(chunk)
	r.Fence()
	return chunk + chunkHdr
}

// ----------------------------------------------------------------------
// Roots and the generic interface.

// SetRoot registers a persistent root.
func (h *Heap) SetRoot(i int, off uint64) {
	slot := rootOff(i)
	if off == 0 {
		h.region.Store(slot, pptr.Nil)
	} else {
		h.region.Store(slot, pptr.Pack(slot, off))
	}
	h.region.Flush(slot)
	h.region.Fence()
}

// GetRoot reads a persistent root.
func (h *Heap) GetRoot(i int) uint64 {
	slot := rootOff(i)
	off, ok := pptr.Unpack(slot, h.region.Load(slot))
	if !ok {
		return 0
	}
	return off
}

// Handle adapts malloc-to/free-from to the plain malloc/free interface the
// benchmarks use, via a persistent per-handle scratch slot — the "local
// dummy variable" of §6.1.
type Handle struct {
	heap    *Heap
	scratch uint64
	invalid bool
}

// NewHandle implements alloc.Allocator.
func (h *Heap) NewHandle() alloc.Handle {
	h.mu.Lock()
	if h.nHandles >= maxHandles {
		h.mu.Unlock()
		panic("pmdk: too many handles")
	}
	slot := uint64(offScratch) + uint64(h.nHandles)*8
	h.nHandles++
	h.mu.Unlock()
	return &Handle{heap: h, scratch: slot}
}

// Malloc implements alloc.Handle: malloc-to the scratch slot.
func (hd *Handle) Malloc(size uint64) uint64 {
	if hd.invalid {
		panic("pmdk: stale handle")
	}
	return hd.heap.MallocTo(size, hd.scratch)
}

// Free implements alloc.Handle: point the scratch slot at the block, then
// free-from it.
func (hd *Handle) Free(off uint64) {
	if off == 0 {
		return
	}
	if hd.invalid {
		panic("pmdk: stale handle")
	}
	r := hd.heap.region
	r.Store(hd.scratch, pptr.Pack(hd.scratch, off))
	r.Flush(hd.scratch)
	r.Fence()
	hd.heap.FreeFrom(hd.scratch)
}

// Close writes everything back and clears the dirty flag.
func (h *Heap) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return errors.New("pmdk: already closed")
	}
	h.closed = true
	h.mu.Unlock()
	h.region.Persist()
	h.region.Store(offDirty, 0)
	h.region.Flush(offDirty)
	h.region.Fence()
	h.region.Persist()
	return nil
}

var _ alloc.Allocator = (*Heap)(nil)
var _ alloc.Recoverable = (*Heap)(nil)
