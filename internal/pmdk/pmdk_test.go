package pmdk

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloctest"
	"repro/internal/pmem"
	"repro/internal/pptr"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(size uint64) (alloc.Allocator, error) {
		h, err := New(Config{HeapSize: size})
		return h, err
	})
}

func testHeap(t *testing.T) *Heap {
	t.Helper()
	h, err := New(Config{HeapSize: 16 << 20, Pmem: pmem.Config{Mode: pmem.ModeCrashSim}})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMallocToAttachesAtomically(t *testing.T) {
	h := testHeap(t)
	r := h.Region()
	// Destination slot: a persistent root cell.
	dest := rootOff(3)
	block := h.MallocTo(64, dest)
	if block == 0 {
		t.Fatal("MallocTo failed")
	}
	got, ok := pptr.Unpack(dest, r.Load(dest))
	if !ok || got != block {
		t.Fatalf("dest holds %#x ok=%v, want %#x", got, ok, block)
	}
	// The attach is immediately crash-persistent.
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	got, ok = pptr.Unpack(dest, r.Load(dest))
	if !ok || got != block {
		t.Fatal("attach lost in crash: malloc-to must be failure-atomic")
	}
}

func TestFreeFromDetachesAtomically(t *testing.T) {
	h := testHeap(t)
	r := h.Region()
	dest := rootOff(4)
	block := h.MallocTo(64, dest)
	h.FreeFrom(dest)
	if _, ok := pptr.Unpack(dest, r.Load(dest)); ok {
		t.Fatal("FreeFrom left the pointer set")
	}
	// Block is reusable.
	if again := h.MallocTo(64, dest); again != block {
		t.Fatalf("freed block not at head of free list: %#x vs %#x", again, block)
	}
}

func TestRedoLogReplayOnRecovery(t *testing.T) {
	// Simulate a crash with a valid, un-applied redo log: recovery must
	// replay it so the attach is never half done.
	h := testHeap(t)
	r := h.Region()
	dest := rootOff(5)
	block := h.MallocTo(64, dest)
	h.FreeFrom(dest)

	// Hand-craft a pending log: re-attach block to dest.
	r.Store(offLogEnts, dest)
	r.Store(offLogEnts+8, pptr.Pack(dest, block))
	r.Store(offLogCount, 1)
	r.FlushRange(offLogCount, 24)
	r.Fence()
	r.Store(offLogValid, 1)
	r.Flush(offLogValid)
	r.Fence()

	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	got, ok := pptr.Unpack(dest, r.Load(dest))
	if !ok || got != block {
		t.Fatal("valid redo log was not replayed")
	}
	if r.Load(offLogValid) != 0 {
		t.Fatal("log not retired after replay")
	}
}

func TestPerOpFlushCost(t *testing.T) {
	// PMDK's defining cost: several flushes and fences on every single
	// operation (log, validate, apply, retire).
	h := testHeap(t)
	hd := h.NewHandle()
	base := h.Region().Stats()
	const n = 1000
	offs := make([]uint64, n)
	for i := range offs {
		offs[i] = hd.Malloc(64)
	}
	for _, o := range offs {
		hd.Free(o)
	}
	s := h.Region().Stats()
	flushPerOp := float64(s.Flushes-base.Flushes) / float64(2*n)
	fencePerOp := float64(s.Fences-base.Fences) / float64(2*n)
	if flushPerOp < 2 || fencePerOp < 2 {
		t.Fatalf("PMDK model: %.1f flushes, %.1f fences per op; expected several of each",
			flushPerOp, fencePerOp)
	}
}

func TestRootsRoundTrip(t *testing.T) {
	h := testHeap(t)
	hd := h.NewHandle()
	off := hd.Malloc(64)
	h.SetRoot(9, off)
	if got := h.GetRoot(9); got != off {
		t.Fatalf("root = %#x, want %#x", got, off)
	}
}

func TestMetadataCrashConsistentWithoutGC(t *testing.T) {
	// Unlike Ralloc, PMDK's free lists are persistent: after a crash at
	// an operation boundary, allocation must work with no GC pass at all.
	h := testHeap(t)
	hd := h.NewHandle()
	var offs []uint64
	for i := 0; i < 500; i++ {
		offs = append(offs, hd.Malloc(64))
	}
	for _, o := range offs[:250] {
		hd.Free(o)
	}
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(); err != nil { // log replay only
		t.Fatal(err)
	}
	h2, dirty, err := Attach(h.Region())
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("crashed pool reported clean")
	}
	hd2 := h2.NewHandle()
	seen := map[uint64]bool{}
	for _, o := range offs[250:] {
		seen[o] = true
	}
	for i := 0; i < 1000; i++ {
		off := hd2.Malloc(64)
		if off == 0 {
			t.Fatal("OOM after crash")
		}
		if seen[off] {
			t.Fatalf("still-attached block %#x re-allocated", off)
		}
	}
}
