// Package alloc defines the allocator interface shared by Ralloc and the
// four baseline allocators, so that workloads, applications and data
// structures can be written once and run against any of them — mirroring how
// the paper's benchmarks link against five different malloc implementations.
//
// All allocators hand out *byte offsets* into a pmem.Region rather than Go
// pointers. Offset 0 is the null pointer. This keeps every allocator's data
// position-independent (the heap can be saved, reloaded and re-based freely)
// and keeps Go's garbage collector entirely out of the picture: persistent
// blocks are invisible to the runtime, which is the closest Go analog of
// manual persistent allocation in C/C++.
package alloc

import "repro/internal/pmem"

// Nil is the null block offset.
const Nil = uint64(0)

// Allocator is a dynamic memory allocator over a simulated persistent
// region.
type Allocator interface {
	// Name identifies the allocator in benchmark output
	// (e.g. "ralloc", "makalu", "pmdk", "lrmalloc", "jemalloc").
	Name() string
	// Region exposes the underlying memory so data structures can read
	// and write their blocks.
	Region() *pmem.Region
	// NewHandle returns a per-thread allocation context. Handles are the
	// Go analog of thread-local caches: each goroutine must use its own.
	NewHandle() Handle
	// Close cleanly shuts the allocator down: caches are returned, the
	// heap is flushed, and (for persistent allocators) the dirty flag is
	// cleared.
	Close() error
}

// Handle is a per-goroutine allocation context. Handles are not safe for
// concurrent use; goroutines must not share them.
type Handle interface {
	// Malloc allocates size bytes and returns the block's byte offset,
	// or Nil if the heap is exhausted.
	Malloc(size uint64) uint64
	// Free deallocates a block previously returned by Malloc on any
	// handle of the same allocator.
	Free(off uint64)
}

// Recoverable is implemented by persistent allocators that support
// post-crash recovery (Ralloc, and the Makalu/PMDK models).
type Recoverable interface {
	Allocator
	// Recover brings the allocator's metadata to a state where all and
	// only the in-use blocks are allocated (the paper's recoverability
	// criterion), after the region has crashed.
	Recover() error
}
