package repl

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func entry(args ...string) [][]byte {
	out := make([][]byte, len(args))
	for i, a := range args {
		out[i] = []byte(a)
	}
	return out
}

// TestEntryRoundTrip: encode → decode returns the same args and the exact
// wire bytes, and EntryLen matches the encoder.
func TestEntryRoundTrip(t *testing.T) {
	args := entry("SET", "k", "v with spaces\r\nand crlf")
	raw := AppendEntry(nil, args)
	if len(raw) != EntryLen(args) {
		t.Fatalf("EntryLen = %d, encoded %d", EntryLen(args), len(raw))
	}
	got, rawBack, err := ReadEntry(bufio.NewReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawBack, raw) {
		t.Fatalf("raw round trip mismatch:\n got %q\nwant %q", rawBack, raw)
	}
	if len(got) != len(args) {
		t.Fatalf("arg count %d, want %d", len(got), len(args))
	}
	for i := range args {
		if !bytes.Equal(got[i], args[i]) {
			t.Fatalf("arg %d = %q, want %q", i, got[i], args[i])
		}
	}
}

// TestReadEntryAbortAndGarbage: a "-ERR" line at the boundary is a clean
// ErrStreamAbort; malformed streams are ErrProto, never panics.
func TestReadEntryAbortAndGarbage(t *testing.T) {
	_, _, err := ReadEntry(bufio.NewReader(bytes.NewReader([]byte("-ERR shutting down\r\n"))))
	if !errors.Is(err, ErrStreamAbort) {
		t.Fatalf("abort err = %v, want ErrStreamAbort", err)
	}
	for _, bad := range []string{
		"*1\r\n$3\r\nabcXY", // bulk not CRLF-terminated
		"*x\r\n",            // bad array header
		"*1\r\n+OK\r\n",     // non-bulk element
		":5\r\n",            // not an array
		"*1\n$1\na\n",       // bare LF
		"*1\r\n$-1\r\n",     // negative bulk
		"*0\r\n",            // empty entry
	} {
		if _, _, err := ReadEntry(bufio.NewReader(bytes.NewReader([]byte(bad)))); !errors.Is(err, ErrProto) {
			t.Fatalf("%q: err = %v, want ErrProto", bad, err)
		}
	}
}

// TestFeedOffsetsAndBacklog: offsets advance by encoded length from the
// configured start; eviction drops the oldest bytes but keeps offsets
// absolute; a pinned feed retains everything until unpinned.
func TestFeedOffsetsAndBacklog(t *testing.T) {
	const start = 1000
	f := NewFeed(64, 7, start)
	if f.Offset() != start || f.StartOffset() != start {
		t.Fatalf("fresh feed offsets = (%d, %d), want %d", f.Offset(), f.StartOffset(), start)
	}
	e := entry("SET", "key", "value")
	var want uint64 = start
	for i := 0; i < 10; i++ {
		want += uint64(EntryLen(e))
		if got := f.Append(e); got != want {
			t.Fatalf("append %d: offset %d, want %d", i, got, want)
		}
	}
	if f.BacklogLen() > 64 {
		t.Fatalf("backlog %d bytes, want <= 64", f.BacklogLen())
	}
	if f.StartOffset() == start {
		t.Fatal("backlog never evicted")
	}
	if f.Entries() != 10 {
		t.Fatalf("entries = %d, want 10", f.Entries())
	}

	// Pinned: nothing evicts; unpin re-trims.
	f.Pin()
	pinnedStart := f.StartOffset()
	for i := 0; i < 10; i++ {
		f.Append(e)
	}
	if f.StartOffset() != pinnedStart {
		t.Fatal("pinned feed evicted")
	}
	f.Unpin()
	if f.BacklogLen() > 64 {
		t.Fatalf("post-unpin backlog %d bytes, want <= 64", f.BacklogLen())
	}
}

// TestCursorStreamsExactBytes: a cursor started at an entry boundary
// returns the precise byte stream of subsequent appends, across blocking
// waits, every returned batch is itself whole entries (a max smaller than
// one entry still yields that entry, never a fragment), and entry
// boundaries reconstruct via SplitEntries.
func TestCursorStreamsExactBytes(t *testing.T) {
	f := NewFeed(1<<20, 1, 0)
	first := f.Append(entry("SET", "a", "1"))
	c, ok := f.CursorAt(0)
	if !ok {
		t.Fatal("CursorAt(0) refused")
	}
	var got []byte
	var mu sync.Mutex
	ragged := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			p, err := c.NextEntries(7) // smaller than any entry: one at a time
			if err != nil {
				return
			}
			if _, err := SplitEntries(p); err != nil {
				ragged = true
			}
			mu.Lock()
			got = append(got, p...)
			mu.Unlock()
		}
	}()
	f.Append(entry("DEL", "a"))
	f.Append(entry("SET", "b", "22"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if uint64(n) == f.Offset() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cursor drained %d bytes, want %d", n, f.Offset())
		}
		time.Sleep(time.Millisecond)
	}
	f.Close()
	<-done
	want := AppendEntry(nil, entry("SET", "a", "1"))
	want = AppendEntry(want, entry("DEL", "a"))
	want = AppendEntry(want, entry("SET", "b", "22"))
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, want) {
		t.Fatalf("stream mismatch:\n got %q\nwant %q", got, want)
	}
	if ragged {
		t.Fatal("NextEntries returned a batch that was not whole entries")
	}
	ends, err := SplitEntries(got)
	if err != nil || len(ends) != 3 {
		t.Fatalf("SplitEntries = %v, %v; want 3 clean entries", ends, err)
	}
	if first != uint64(ends[0]) {
		t.Fatalf("first append offset %d, first boundary %d", first, ends[0])
	}
}

// TestCursorErrors: abort unblocks a waiting cursor; a cursor under an
// evicted position reports ErrFellBehind; CursorAt outside the window
// refuses; a drained cursor on a closed feed reports ErrClosed.
func TestCursorErrors(t *testing.T) {
	f := NewFeed(1<<20, 1, 0)
	c, _ := f.CursorAt(0)
	errc := make(chan error, 1)
	go func() {
		_, err := c.NextEntries(1 << 16)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Abort()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("abort err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Abort did not unblock Next")
	}

	small := NewFeed(32, 1, 0)
	lag, _ := small.CursorAt(0)
	for i := 0; i < 8; i++ {
		small.Append(entry("SET", "key", "value"))
	}
	if _, err := lag.NextEntries(1 << 16); !errors.Is(err, ErrFellBehind) {
		t.Fatalf("lagging cursor err = %v, want ErrFellBehind", err)
	}
	if _, ok := small.CursorAt(0); ok {
		t.Fatal("CursorAt accepted evicted offset")
	}
	if _, ok := small.CursorAt(small.Offset() + 1); ok {
		t.Fatal("CursorAt accepted future offset")
	}

	small.Close()
	c2, _ := small.CursorAt(small.Offset())
	if _, err := c2.NextEntries(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed err = %v, want ErrClosed", err)
	}
}

// TestNextEntriesBatches: with room to spare, one call returns multiple
// whole entries; a budget ending mid-entry rounds down to the boundary.
func TestNextEntriesBatches(t *testing.T) {
	f := NewFeed(1<<20, 1, 0)
	e := entry("SET", "key", "value")
	el := EntryLen(e)
	for i := 0; i < 5; i++ {
		f.Append(e)
	}
	c, _ := f.CursorAt(0)
	p, err := c.NextEntries(el * 3)
	if err != nil || len(p) != el*3 {
		t.Fatalf("NextEntries(3 entries) = %d bytes, %v; want %d", len(p), err, el*3)
	}
	p, err = c.NextEntries(el*2 - 1) // mid-entry budget: round down to 1
	if err != nil || len(p) != el {
		t.Fatalf("NextEntries(mid-entry) = %d bytes, %v; want %d", len(p), err, el)
	}
	p, err = c.NextEntries(1 << 20)
	if err != nil || len(p) != el {
		t.Fatalf("NextEntries(rest) = %d bytes, %v; want %d", len(p), err, el)
	}
	if c.Offset() != f.Offset() {
		t.Fatalf("cursor offset %d, feed offset %d", c.Offset(), f.Offset())
	}
}

// TestHandshakeRoundTrip: both handshake lines and the refusal parse back.
func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFullResync(&buf, 0xdeadbeef, 12345, 1); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHandshake(bufio.NewReader(&buf))
	if err != nil || !h.Full || h.ID != 0xdeadbeef || h.Offset != 12345 {
		t.Fatalf("FULLRESYNC round trip = %+v, %v", h, err)
	}
	buf.Reset()
	if err := WriteContinue(&buf, 999); err != nil {
		t.Fatal(err)
	}
	h, err = ReadHandshake(bufio.NewReader(&buf))
	if err != nil || h.Full || h.Offset != 999 {
		t.Fatalf("CONTINUE round trip = %+v, %v", h, err)
	}
	buf.Reset()
	if err := WriteAbort(&buf, "draining\r\nnow"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHandshake(bufio.NewReader(&buf)); !errors.Is(err, ErrStreamAbort) {
		t.Fatalf("refusal err = %v, want ErrStreamAbort", err)
	}
}

// TestImageChunksRoundTrip: an image larger than one chunk survives the
// chunked framing byte-for-byte, and an abort line mid-stream surfaces as
// ErrStreamAbort with a bounded prefix written.
func TestImageChunksRoundTrip(t *testing.T) {
	img := make([]byte, imageChunkBytes*2+12345)
	for i := range img {
		img[i] = byte(i * 31)
	}
	var wire bytes.Buffer
	n, err := CopyImageChunks(&wire, bytes.NewReader(img))
	if err != nil || n != int64(len(img)) {
		t.Fatalf("CopyImageChunks = %d, %v", n, err)
	}
	var out bytes.Buffer
	n, err = ReadImage(bufio.NewReader(&wire), &out)
	if err != nil || n != int64(len(img)) {
		t.Fatalf("ReadImage = %d, %v", n, err)
	}
	if !bytes.Equal(out.Bytes(), img) {
		t.Fatal("image bytes mismatch after chunked round trip")
	}

	var aborted bytes.Buffer
	fmt.Fprintf(&aborted, "$4\r\nabcd\r\n")
	WriteAbort(&aborted, "shutting down")
	var sink bytes.Buffer
	if _, err := ReadImage(bufio.NewReader(&aborted), &sink); !errors.Is(err, ErrStreamAbort) {
		t.Fatalf("aborted image err = %v, want ErrStreamAbort", err)
	}
}

// TestCopyImageChunksAbort: an abort firing mid-image cuts the stream with a
// clean "-ERR" line that the reading side surfaces as ErrStreamAbort; an
// abort that never fires streams the image identically to CopyImageChunks.
func TestCopyImageChunksAbort(t *testing.T) {
	img := make([]byte, imageChunkBytes+100)
	var wire bytes.Buffer
	calls := 0
	_, err := CopyImageChunksAbort(&wire, bytes.NewReader(img), func() string {
		calls++
		if calls > 1 {
			return "shutting down"
		}
		return ""
	})
	if !errors.Is(err, ErrStreamAbort) {
		t.Fatalf("sender err = %v, want ErrStreamAbort", err)
	}
	var sink bytes.Buffer
	if _, err := ReadImage(bufio.NewReader(&wire), &sink); !errors.Is(err, ErrStreamAbort) {
		t.Fatalf("reader err = %v, want ErrStreamAbort", err)
	}

	wire.Reset()
	n, err := CopyImageChunksAbort(&wire, bytes.NewReader(img), func() string { return "" })
	if err != nil || n != int64(len(img)) {
		t.Fatalf("no-abort copy = %d, %v", n, err)
	}
	sink.Reset()
	if n, err := ReadImage(bufio.NewReader(&wire), &sink); err != nil || n != int64(len(img)) {
		t.Fatalf("no-abort read = %d, %v", n, err)
	}
}

// TestBootstrapImage: against a scripted in-test primary, BootstrapImage
// writes exactly the streamed image, atomically, and returns the handshake
// metadata; a mid-image abort leaves no file and no temp file behind.
func TestBootstrapImage(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "primary.sock")
	img := make([]byte, 100_000)
	for i := range img {
		img[i] = byte(i)
	}
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				args, _, err := ReadEntry(br)
				if err != nil || len(args) != 3 || string(args[0]) != "PSYNC" {
					return
				}
				WriteFullResync(conn, 0xfeed, 4242, 1)
				CopyImageChunks(conn, bytes.NewReader(img))
			}(conn)
		}
	}()

	path := filepath.Join(dir, "replica.heap")
	id, off, err := BootstrapImage(sock, path)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0xfeed || off != 4242 {
		t.Fatalf("handshake meta = (%#x, %d), want (0xfeed, 4242)", id, off)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatalf("bootstrapped image: %d bytes, mismatch", len(got))
	}

	// Aborting primary: image must not appear, temp must not linger.
	abortSock := filepath.Join(dir, "abort.sock")
	aln, err := net.Listen("unix", abortSock)
	if err != nil {
		t.Fatal(err)
	}
	defer aln.Close()
	go func() {
		conn, err := aln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		ReadEntry(br)
		WriteFullResync(conn, 1, 0, 1)
		fmt.Fprintf(conn, "$4\r\nabcd\r\n")
		WriteAbort(conn, "draining")
	}()
	abortPath := filepath.Join(dir, "aborted.heap")
	if _, _, err := BootstrapImage(abortSock, abortPath); !errors.Is(err, ErrStreamAbort) {
		t.Fatalf("aborted bootstrap err = %v, want ErrStreamAbort", err)
	}
	if _, err := os.Stat(abortPath); !os.IsNotExist(err) {
		t.Fatal("aborted bootstrap left the image file")
	}
	if _, err := os.Stat(abortPath + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("aborted bootstrap left the temp file")
	}
}
