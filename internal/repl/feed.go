package repl

import (
	"errors"
	"sync"
)

var (
	// ErrClosed reports that the feed was closed (server shutdown or role
	// change) while a cursor was waiting for more bytes.
	ErrClosed = errors.New("repl: feed closed")
	// ErrAborted reports that this cursor specifically was aborted
	// (replica link torn down, PSYNC stream cancelled).
	ErrAborted = errors.New("repl: cursor aborted")
	// ErrFellBehind reports that the backlog evicted bytes past the
	// cursor's position: the consumer is too slow for the configured
	// backlog and must full-resync.
	ErrFellBehind = errors.New("repl: cursor fell behind backlog")
)

// Feed is the replication write feed. On a primary it is the source of
// truth for propagation: every successful write-flagged command appends its
// canonical RESP encoding and the end offset advances; sender cursors stream
// the bytes to replicas. On a replica the same structure tracks the applied
// stream — every entry applied from the link is re-appended verbatim, so the
// replica's feed is byte-identical to the primary's prefix it has consumed,
// its end offset *is* the applied offset, and promotion just starts new
// cursors on it.
type Feed struct {
	mu   sync.Mutex
	cond *sync.Cond

	id      uint64 // replication stream ID (hex token in the handshake)
	b       backlog
	pins    int // >0: full-sync in flight, eviction paused
	closed  bool
	entries uint64 // appended entry count, for observability
}

// NewFeed creates a feed whose stream starts at offset start (a replica
// bootstrapped from a checkpoint image starts at the image's stamped
// offset; a fresh primary starts at 0) with the given stream ID and backlog
// retention bound in bytes.
func NewFeed(capacity int, id, start uint64) *Feed {
	if capacity < 1 {
		capacity = 1
	}
	f := &Feed{id: id, b: backlog{start: start, max: capacity}}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// ID returns the replication stream ID.
func (f *Feed) ID() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.id
}

// SetID changes the stream ID. A server transitioning to primary installs a
// fresh ID so stale replicas of the previous stream cannot silently
// partial-resync across the divergence point.
func (f *Feed) SetID(id uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.id = id
}

// Offset returns the feed's end offset: the stream position after the last
// appended entry. On a replica this is the applied offset.
func (f *Feed) Offset() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.b.end()
}

// StartOffset returns the earliest retained stream offset.
func (f *Feed) StartOffset() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.b.start
}

// BacklogLen returns the retained byte count.
func (f *Feed) BacklogLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.b.data)
}

// Entries returns how many entries have been appended over the feed's
// lifetime.
func (f *Feed) Entries() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.entries
}

// Append encodes args as one canonical feed entry, appends it, and returns
// the new end offset. Callers serialize appends against each other only as
// far as their own ordering requirements demand — on the primary the tap
// appends while still holding the command's stripe locks, so feed order
// equals execution order for conflicting commands.
func (f *Feed) Append(args [][]byte) uint64 {
	return f.AppendRaw(AppendEntry(nil, args))
}

// AppendRaw appends an already-encoded entry (a replica re-appending the
// exact bytes it consumed from the link) and returns the new end offset.
func (f *Feed) AppendRaw(raw []byte) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.b.append(raw)
	f.entries++
	if f.pins == 0 {
		f.b.trim()
	}
	f.cond.Broadcast()
	return f.b.end()
}

// Pin pauses backlog eviction. A full sync pins before the checkpoint
// image's offset is fixed so the feed bytes from that offset onward are
// still retained when the image finishes streaming. Pins nest.
func (f *Feed) Pin() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pins++
}

// Unpin reverses one Pin, re-applying the retention bound.
func (f *Feed) Unpin() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pins <= 0 {
		panic("repl: Unpin without Pin")
	}
	f.pins--
	if f.pins == 0 {
		f.b.trim()
	}
}

// Close marks the feed closed and wakes every waiting cursor with ErrClosed
// once they drain the retained bytes.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	f.cond.Broadcast()
}

// CursorAt returns a cursor positioned at absolute stream offset off, or
// false if the backlog no longer covers it (the caller must full-resync).
// off must be an entry boundary — image cut-over offsets and replica
// applied offsets are, by construction.
func (f *Feed) CursorAt(off uint64) (*Cursor, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.b.covers(off) {
		return nil, false
	}
	return &Cursor{f: f, off: off}, true
}

// Cursor is one consumer's position in the feed. Next blocks for new bytes;
// Abort (any goroutine) unblocks it with ErrAborted.
type Cursor struct {
	f       *Feed
	off     uint64
	aborted bool // guarded by f.mu
}

// Offset returns the cursor's current absolute stream offset.
func (c *Cursor) Offset() uint64 {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return c.off
}

// NextEntries returns the next available feed entries — whole entries only,
// as many as fit in max bytes but always at least one — blocking until the
// feed grows past the cursor. Entry alignment is what lets a sender abort
// the stream cleanly: a "-ERR" line is only legal at an entry boundary, so
// every write this returns leaves the wire in a resumable state. The
// returned slice is a copy. Errors: ErrAborted after Abort, ErrFellBehind if
// the backlog evicted the cursor's position, ErrClosed once the feed is
// closed and drained.
func (c *Cursor) NextEntries(max int) ([]byte, error) {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if c.aborted {
			return nil, ErrAborted
		}
		if c.off < f.b.start {
			return nil, ErrFellBehind
		}
		if c.off < f.b.end() {
			p := f.b.sliceEntries(c.off, max)
			out := make([]byte, len(p))
			copy(out, p)
			c.off += uint64(len(out))
			return out, nil
		}
		if f.closed {
			return nil, ErrClosed
		}
		f.cond.Wait()
	}
}

// Abort wakes a blocked Next with ErrAborted and poisons the cursor.
func (c *Cursor) Abort() {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	c.aborted = true
	c.f.cond.Broadcast()
}
