// Package repl implements primary→replica replication for the server: a
// monotone byte-offset write feed over the canonical RESP encoding of every
// propagated write command, a bounded in-memory backlog ring that lets a
// briefly-disconnected replica resume without a full re-bootstrap, and the
// PSYNC-style handshake that streams a checkpoint image followed by the live
// feed.
//
// The package deliberately knows nothing about storage: replica-side
// mutation happens by handing decoded feed entries back to the server's
// normal dispatch pipeline, never by touching pmem directly (enforced by the
// ralloc-vet replpurity rule). The only state here is the feed itself.
package repl

import "sort"

// backlog retains the most recent bytes of the feed in a flat buffer.
// Offsets are absolute stream positions: the buffer holds bytes
// [start, start+len(data)), and trimming advances start. Alongside the bytes
// it keeps the absolute end offset of every retained entry, so consumers can
// take whole-entry spans — a sender must never cut the wire mid-entry,
// because an abort line is only legal at an entry boundary. All access is
// guarded by the owning Feed's mutex.
type backlog struct {
	data  []byte
	start uint64   // stream offset of data[0]
	ends  []uint64 // ascending absolute end offsets of retained entries
	max   int      // retained-byte bound when unpinned
}

func (b *backlog) end() uint64 { return b.start + uint64(len(b.data)) }

// append adds one complete entry's bytes.
func (b *backlog) append(p []byte) {
	b.data = append(b.data, p...)
	b.ends = append(b.ends, b.end())
}

// trim enforces the retention bound. Eviction is byte-granular: start may
// land mid-entry, which is harmless because cursors only ever sit on entry
// boundaries — a boundary inside the retained window stays addressable no
// matter where the window's ragged front edge falls. Boundary records whose
// entry ends at or before the new start are dropped with the bytes.
func (b *backlog) trim() {
	if len(b.data) <= b.max {
		return
	}
	n := len(b.data) - b.max
	b.data = b.data[n:]
	b.start += uint64(n)
	drop := sort.Search(len(b.ends), func(i int) bool { return b.ends[i] > b.start })
	b.ends = b.ends[drop:]
	// The slice-off fronts are dead capacity; once they dominate, re-home
	// the window so memory stays O(max) across the feed's lifetime.
	if cap(b.data) > 2*b.max+1024 {
		fresh := make([]byte, len(b.data), b.max+b.max/4)
		copy(fresh, b.data)
		b.data = fresh
	}
	if cap(b.ends) > 2*len(b.ends)+64 {
		fresh := make([]uint64, len(b.ends))
		copy(fresh, b.ends)
		b.ends = fresh
	}
}

// covers reports whether off is inside the retained window (an end-of-window
// offset counts: a fully caught-up cursor has nothing to read but is valid).
func (b *backlog) covers(off uint64) bool {
	return off >= b.start && off <= b.end()
}

// sliceEntries returns the retained bytes of as many complete entries
// starting at off as fit in max bytes — but always at least one, so a single
// oversized entry cannot wedge its consumer. off must be an entry boundary
// with off < end(). The caller must hold the feed lock; the returned slice
// aliases the buffer and must be copied before the lock is released.
func (b *backlog) sliceEntries(off uint64, max int) []byte {
	i := sort.Search(len(b.ends), func(i int) bool { return b.ends[i] > off })
	last := b.ends[i]
	for i+1 < len(b.ends) && b.ends[i+1]-off <= uint64(max) {
		i++
		last = b.ends[i]
	}
	return b.data[off-b.start : last-b.start]
}
