package repl

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Wire format. The replication link speaks three shapes, all RESP-derived:
//
//   - feed entries: canonical RESP arrays of bulk strings — exactly what
//     the server's own reader accepts, so a replica can hand entries
//     straight to dispatch. The feed offset counts these bytes.
//   - handshake lines: "+FULLRESYNC <id-hex> <offset>\r\n" (an image
//     follows, then the feed from <offset>) or "+CONTINUE <offset>\r\n"
//     (the feed resumes at <offset>, no image).
//   - the bootstrap image: a sequence of non-empty chunks "$<n>\r\n<n
//     bytes>\r\n" terminated by an empty chunk "$0\r\n\r\n", so the
//     replica knows the image ended cleanly rather than the connection
//     dying mid-stream.
//
// At any entry or chunk boundary the sender may emit a "-ERR ...\r\n" line
// instead: a clean abort (primary shutting down mid-PSYNC). Readers surface
// it as ErrStreamAbort so the replica logs the reason and reconnects,
// instead of waiting out a TCP timeout on a wedged stream.

const (
	// maxEntryArgs and maxEntryBulk bound a decoded feed entry; they mirror
	// the server reader's hostile-input caps.
	maxEntryArgs = 1 << 17
	maxEntryBulk = 64 << 20
	// maxLineLen bounds any single protocol line.
	maxLineLen = 64 << 10
	// imageChunkBytes is the bulk size the image streams in.
	imageChunkBytes = 256 << 10
)

// ErrStreamAbort is wrapped around the sender's message when the stream is
// cleanly aborted with a "-ERR" line.
var ErrStreamAbort = errors.New("repl: stream aborted by peer")

// ErrProto reports a malformed replication stream.
var ErrProto = errors.New("repl: protocol error")

// AppendEntry appends the canonical RESP encoding of args to dst and
// returns it. This is the feed's byte format: what Append offsets count and
// what the replica's reader decodes.
func AppendEntry(dst []byte, args [][]byte) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(len(args)), 10)
	dst = append(dst, '\r', '\n')
	for _, a := range args {
		dst = append(dst, '$')
		dst = strconv.AppendInt(dst, int64(len(a)), 10)
		dst = append(dst, '\r', '\n')
		dst = append(dst, a...)
		dst = append(dst, '\r', '\n')
	}
	return dst
}

// EntryLen returns the encoded byte length of args without encoding it.
func EntryLen(args [][]byte) int {
	n := 1 + intLen(len(args)) + 2
	for _, a := range args {
		n += 1 + intLen(len(a)) + 2 + len(a) + 2
	}
	return n
}

func intLen(v int) int {
	n := 1
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

// readLine reads one CRLF-terminated line (without the CRLF), bounded by
// maxLineLen, appending the raw bytes (with CRLF) to *raw when raw != nil.
func readLine(br *bufio.Reader, raw *[]byte) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, fmt.Errorf("%w: line too long", ErrProto)
		}
		return nil, err
	}
	if raw != nil {
		*raw = append(*raw, line...)
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: bare LF", ErrProto)
	}
	return line[:len(line)-2], nil
}

// ReadEntry decodes one feed entry from br, returning the parsed arguments
// and the entry's exact wire bytes (what AppendRaw re-appends on a
// replica). A "-..." line at the boundary returns ErrStreamAbort carrying
// the sender's message.
func ReadEntry(br *bufio.Reader) (args [][]byte, raw []byte, err error) {
	raw = make([]byte, 0, 64)
	line, err := readLine(br, &raw)
	if err != nil {
		return nil, nil, err
	}
	if len(line) == 0 {
		return nil, nil, fmt.Errorf("%w: empty line", ErrProto)
	}
	if line[0] == '-' {
		return nil, nil, fmt.Errorf("%w: %s", ErrStreamAbort, strings.TrimPrefix(string(line[1:]), "ERR "))
	}
	if line[0] != '*' {
		return nil, nil, fmt.Errorf("%w: expected array, got %q", ErrProto, line[0])
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 1 || n > maxEntryArgs {
		return nil, nil, fmt.Errorf("%w: bad array header %q", ErrProto, line)
	}
	args = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		line, err := readLine(br, &raw)
		if err != nil {
			return nil, nil, err
		}
		if len(line) == 0 || line[0] != '$' {
			return nil, nil, fmt.Errorf("%w: expected bulk, got %q", ErrProto, line)
		}
		bl, err := strconv.Atoi(string(line[1:]))
		if err != nil || bl < 0 || bl > maxEntryBulk {
			return nil, nil, fmt.Errorf("%w: bad bulk header %q", ErrProto, line)
		}
		body := make([]byte, bl+2)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, nil, err
		}
		if body[bl] != '\r' || body[bl+1] != '\n' {
			return nil, nil, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProto)
		}
		raw = append(raw, body...)
		args = append(args, body[:bl])
	}
	return args, raw, nil
}

// Handshake is the parsed reply to a PSYNC request.
type Handshake struct {
	Full   bool   // true: FULLRESYNC (image follows); false: CONTINUE
	ID     uint64 // stream ID (FULLRESYNC only)
	Offset uint64 // stream offset the feed will start/resume at
	// Shards is the number of checkpoint images that follow a FULLRESYNC
	// (one per shard of the primary's keyspace, streamed sequentially).
	// The single-shard handshake omits the field on the wire — Shards is 1
	// then — so single-shard peers from before the cluster layer
	// interoperate unchanged.
	Shards int
}

// WriteFullResync writes the full-resync handshake line. shards is the
// number of images that follow; values <= 1 write the original two-field
// line (byte-compatible with pre-cluster replicas).
func WriteFullResync(w io.Writer, id, off uint64, shards int) error {
	if shards <= 1 {
		_, err := fmt.Fprintf(w, "+FULLRESYNC %016x %d\r\n", id, off)
		return err
	}
	_, err := fmt.Fprintf(w, "+FULLRESYNC %016x %d %d\r\n", id, off, shards)
	return err
}

// WriteContinue writes the partial-resync handshake line.
func WriteContinue(w io.Writer, off uint64) error {
	_, err := fmt.Fprintf(w, "+CONTINUE %d\r\n", off)
	return err
}

// WriteAbort writes the clean-abort error line a reader surfaces as
// ErrStreamAbort. msg must be a single line; CR/LF are replaced.
func WriteAbort(w io.Writer, msg string) error {
	msg = strings.Map(func(r rune) rune {
		if r == '\r' || r == '\n' {
			return ' '
		}
		return r
	}, msg)
	_, err := fmt.Fprintf(w, "-ERR %s\r\n", msg)
	return err
}

// ReadHandshake parses the reply to PSYNC: FULLRESYNC, CONTINUE, or a
// "-ERR" refusal (returned as ErrStreamAbort).
func ReadHandshake(br *bufio.Reader) (Handshake, error) {
	var h Handshake
	line, err := readLine(br, nil)
	if err != nil {
		return h, err
	}
	if len(line) == 0 {
		return h, fmt.Errorf("%w: empty handshake", ErrProto)
	}
	if line[0] == '-' {
		return h, fmt.Errorf("%w: %s", ErrStreamAbort, strings.TrimPrefix(string(line[1:]), "ERR "))
	}
	if line[0] != '+' {
		return h, fmt.Errorf("%w: bad handshake %q", ErrProto, line)
	}
	fields := strings.Fields(string(line[1:]))
	switch {
	case (len(fields) == 3 || len(fields) == 4) && fields[0] == "FULLRESYNC":
		id, err1 := strconv.ParseUint(fields[1], 16, 64)
		off, err2 := strconv.ParseUint(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return h, fmt.Errorf("%w: bad FULLRESYNC %q", ErrProto, line)
		}
		shards := 1
		if len(fields) == 4 {
			n, err := strconv.Atoi(fields[3])
			if err != nil || n < 2 || n > 256 {
				return h, fmt.Errorf("%w: bad FULLRESYNC shard count %q", ErrProto, line)
			}
			shards = n
		}
		return Handshake{Full: true, ID: id, Offset: off, Shards: shards}, nil
	case len(fields) == 2 && fields[0] == "CONTINUE":
		off, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return h, fmt.Errorf("%w: bad CONTINUE %q", ErrProto, line)
		}
		return Handshake{Offset: off}, nil
	default:
		return h, fmt.Errorf("%w: bad handshake %q", ErrProto, line)
	}
}

// CopyImageChunks streams r to w in the chunked-bulk image framing,
// finishing with the empty terminator chunk. Returns the image byte count.
func CopyImageChunks(w io.Writer, r io.Reader) (int64, error) {
	buf := make([]byte, imageChunkBytes)
	var total int64
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if _, err := fmt.Fprintf(w, "$%d\r\n", n); err != nil {
				return total, err
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return total, err
			}
			if _, err := io.WriteString(w, "\r\n"); err != nil {
				return total, err
			}
			total += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return total, rerr
		}
	}
	_, err := io.WriteString(w, "$0\r\n\r\n")
	return total, err
}

// CopyImageChunksAbort is CopyImageChunks with an abort check between
// chunks: when abort returns a non-empty reason, the stream is cut with a
// clean "-ERR" line (legal at a chunk boundary) and ErrStreamAbort is
// returned. A primary shutting down mid-PSYNC uses this so the replica sees
// a parseable refusal instead of a wedged or torn image stream.
func CopyImageChunksAbort(w io.Writer, r io.Reader, abort func() string) (int64, error) {
	buf := make([]byte, imageChunkBytes)
	var total int64
	for {
		if msg := abort(); msg != "" {
			if err := WriteAbort(w, msg); err != nil {
				return total, err
			}
			return total, fmt.Errorf("%w: %s", ErrStreamAbort, msg)
		}
		n, rerr := r.Read(buf)
		if n > 0 {
			if _, err := fmt.Fprintf(w, "$%d\r\n", n); err != nil {
				return total, err
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return total, err
			}
			if _, err := io.WriteString(w, "\r\n"); err != nil {
				return total, err
			}
			total += int64(n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return total, rerr
		}
	}
	_, err := io.WriteString(w, "$0\r\n\r\n")
	return total, err
}

// ReadImage consumes a chunked image stream from br into dst, returning the
// image byte count. A "-ERR" line at a chunk boundary aborts cleanly.
func ReadImage(br *bufio.Reader, dst io.Writer) (int64, error) {
	var total int64
	buf := make([]byte, 32<<10)
	for {
		line, err := readLine(br, nil)
		if err != nil {
			return total, err
		}
		if len(line) == 0 {
			return total, fmt.Errorf("%w: empty chunk header", ErrProto)
		}
		if line[0] == '-' {
			return total, fmt.Errorf("%w: %s", ErrStreamAbort, strings.TrimPrefix(string(line[1:]), "ERR "))
		}
		if line[0] != '$' {
			return total, fmt.Errorf("%w: bad chunk header %q", ErrProto, line)
		}
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n < 0 || n > imageChunkBytes*4 {
			return total, fmt.Errorf("%w: bad chunk length %q", ErrProto, line)
		}
		if n > 0 {
			if _, err := io.CopyBuffer(dst, io.LimitReader(br, int64(n)), buf); err != nil {
				return total, err
			}
			total += int64(n)
		}
		var crlf [2]byte
		if _, err := io.ReadFull(br, crlf[:]); err != nil {
			return total, err
		}
		if crlf != [2]byte{'\r', '\n'} {
			return total, fmt.Errorf("%w: chunk not CRLF-terminated", ErrProto)
		}
		if n == 0 {
			return total, nil
		}
	}
}

// Dial connects to a replication peer address. Addresses containing a path
// separator are unix sockets; everything else is TCP — the same convention
// the serving layer's client uses.
func Dial(addr string) (net.Conn, error) {
	network := "tcp"
	if strings.Contains(addr, "/") {
		network = "unix"
	}
	return net.Dial(network, addr)
}

// BootstrapImage dials the primary at addr, requests a full resync
// ("PSYNC ? 0"), and writes the streamed checkpoint image to path with the
// checkpoint publish discipline (temp file, fsync, rename, directory sync).
// It returns the stream ID and offset the image corresponds to; the caller
// attaches the image and then opens the live link with a partial resync
// from that position. The feed after the image is deliberately not
// consumed here: bootstrap runs before the heap exists, so applying must
// wait for a served process — the backlog covers the gap.
func BootstrapImage(addr, path string) (id, off uint64, err error) {
	return BootstrapImages(addr, []string{path})
}

// BootstrapImages is BootstrapImage for a sharded keyspace: the primary
// streams one image per shard after the FULLRESYNC line, and each is
// published to the corresponding path. The primary's shard count must equal
// len(paths) — a replica configured with a different -cluster-shards would
// route keys differently and silently diverge, so the mismatch is an error
// here, before any heap exists.
func BootstrapImages(addr string, paths []string) (id, off uint64, err error) {
	conn, err := Dial(addr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	if _, err := conn.Write(AppendEntry(nil, [][]byte{[]byte("PSYNC"), []byte("?"), []byte("0")})); err != nil {
		return 0, 0, err
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	h, err := ReadHandshake(br)
	if err != nil {
		return 0, 0, err
	}
	if !h.Full {
		return 0, 0, fmt.Errorf("%w: CONTINUE in response to PSYNC ? 0", ErrProto)
	}
	if err := checkShards(h, len(paths)); err != nil {
		return 0, 0, err
	}
	for _, path := range paths {
		if err := saveImageAtomic(br, path); err != nil {
			return 0, 0, err
		}
	}
	return h.ID, h.Offset, nil
}

// checkShards verifies the primary's advertised image count against the
// replica's configured shard layout.
func checkShards(h Handshake, want int) error {
	got := h.Shards
	if got == 0 {
		got = 1
	}
	if got != want {
		return fmt.Errorf("primary streams %d shard image(s), this replica is configured for %d", got, want)
	}
	return nil
}

// ProbeSync asks the primary whether the stream position (id, off) — a
// restarting replica's image header — is still resumable. On CONTINUE it
// reports partial=true and disconnects (the served process reopens the link
// itself); on FULLRESYNC it consumes the image the primary already produced
// on this same connection into path, so probing never costs a checkpoint
// that is then thrown away. Either way the returned ID/offset are the
// position the on-disk image now corresponds to.
func ProbeSync(addr, path string, id, off uint64) (partial bool, newID, newOff uint64, err error) {
	return ProbeSyncN(addr, []string{path}, id, off)
}

// ProbeSyncN is ProbeSync for a sharded keyspace: a FULLRESYNC answer
// streams one image per shard, published to the corresponding paths.
func ProbeSyncN(addr string, paths []string, id, off uint64) (partial bool, newID, newOff uint64, err error) {
	conn, err := Dial(addr)
	if err != nil {
		return false, 0, 0, err
	}
	defer conn.Close()
	req := [][]byte{
		[]byte("PSYNC"),
		[]byte(fmt.Sprintf("%016x", id)),
		[]byte(strconv.FormatUint(off, 10)),
	}
	if _, err := conn.Write(AppendEntry(nil, req)); err != nil {
		return false, 0, 0, err
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	h, err := ReadHandshake(br)
	if err != nil {
		return false, 0, 0, err
	}
	if !h.Full {
		return true, id, h.Offset, nil
	}
	if err := checkShards(h, len(paths)); err != nil {
		return false, 0, 0, err
	}
	for _, path := range paths {
		if err := saveImageAtomic(br, path); err != nil {
			return false, 0, 0, err
		}
	}
	return false, h.ID, h.Offset, nil
}

// saveImageAtomic consumes a FULLRESYNC image stream from br and publishes
// it at path with the checkpoint discipline: temp file, fsync, rename,
// directory sync.
func saveImageAtomic(br *bufio.Reader, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if _, err := ReadImage(br, f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// SplitEntries walks raw feed bytes and returns the byte boundaries of the
// complete entries they contain (tests use it to assert alignment).
func SplitEntries(raw []byte) (ends []int, err error) {
	br := bufio.NewReader(bytes.NewReader(raw))
	pos := 0
	for pos < len(raw) {
		_, entry, err := ReadEntry(br)
		if err != nil {
			return ends, err
		}
		pos += len(entry)
		ends = append(ends, pos)
	}
	return ends, nil
}
