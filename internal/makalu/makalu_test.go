package makalu

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

func testHeap(t *testing.T, crashSim bool) *Heap {
	t.Helper()
	cfg := Config{HeapSize: 16 << 20}
	if crashSim {
		cfg.Pmem = pmem.Config{Mode: pmem.ModeCrashSim}
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMallocBasic(t *testing.T) {
	h := testHeap(t, false)
	hd := h.NewHandle()
	off := hd.Malloc(64)
	if off == 0 || off%8 != 0 {
		t.Fatalf("Malloc = %#x", off)
	}
	h.Region().Store(off, 0xFEED)
	if h.Region().Load(off) != 0xFEED {
		t.Fatal("block not usable")
	}
}

func TestMallocDistinct(t *testing.T) {
	h := testHeap(t, false)
	hd := h.NewHandle()
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		size := uint64(8 + rng.Intn(393))
		off := hd.Malloc(size)
		if off == 0 {
			t.Fatal("OOM")
		}
		ivs = append(ivs, iv{off, off + sizeclass.Round(size)})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].lo < ivs[i-1].hi {
			t.Fatalf("overlap at %#x", ivs[i].lo)
		}
	}
}

func TestFreeReuse(t *testing.T) {
	h := testHeap(t, false)
	hd := h.NewHandle()
	a := hd.Malloc(64)
	hd.Free(a)
	if b := hd.Malloc(64); b != a {
		t.Fatalf("cache reuse failed: %#x vs %#x", a, b)
	}
}

func TestPerOpFlushCost(t *testing.T) {
	// The defining contrast with Ralloc: Makalu flushes on the malloc/
	// free slow paths at a per-operation rate (logging allocator).
	h := testHeap(t, false)
	hd := h.NewHandle()
	base := h.Region().Stats().Flushes
	const n = 10000
	offs := make([]uint64, n)
	for i := range offs {
		offs[i] = hd.Malloc(64)
	}
	for _, o := range offs {
		hd.Free(o)
	}
	perOp := float64(h.Region().Stats().Flushes-base) / float64(2*n)
	if perOp < 0.2 {
		t.Fatalf("Makalu model flushes %.3f/op; expected O(1) per op", perOp)
	}
}

func TestLargeAllocFree(t *testing.T) {
	h := testHeap(t, false)
	hd := h.NewHandle()
	off := hd.Malloc(200_000)
	if off == 0 {
		t.Fatal("OOM")
	}
	h.Region().Store(off, 1)
	h.Region().Store(off+199_992, 2)
	hd.Free(off)
	// First-fit reuse.
	if off2 := hd.Malloc(150_000); off2 != off {
		t.Fatalf("first fit did not reuse the run: %#x vs %#x", off2, off)
	}
}

func TestOOM(t *testing.T) {
	h, err := New(Config{HeapSize: 4 * ChunkBytes})
	if err != nil {
		t.Fatal(err)
	}
	hd := h.NewHandle()
	n := 0
	for hd.Malloc(14336) != 0 {
		n++
	}
	if n == 0 {
		t.Fatal("nothing allocated before OOM")
	}
}

func TestCrossHandleFree(t *testing.T) {
	h := testHeap(t, false)
	a, b := h.NewHandle(), h.NewHandle()
	var offs []uint64
	for i := 0; i < 2000; i++ {
		offs = append(offs, a.Malloc(128))
	}
	for _, o := range offs {
		b.Free(o)
	}
	for i := 0; i < 2000; i++ {
		if b.Malloc(128) == 0 {
			t.Fatal("OOM")
		}
	}
}

func TestConcurrent(t *testing.T) {
	h := testHeap(t, false)
	var wg sync.WaitGroup
	results := make([][]uint64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hd := h.NewHandle()
			rng := rand.New(rand.NewSource(int64(g)))
			var live []uint64
			for i := 0; i < 5000; i++ {
				if len(live) > 0 && rng.Intn(2) == 0 {
					k := rng.Intn(len(live))
					hd.Free(live[k])
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				} else {
					off := hd.Malloc(uint64(8 + rng.Intn(393)))
					if off == 0 {
						t.Error("OOM")
						return
					}
					live = append(live, off)
				}
			}
			results[g] = live
		}(g)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, live := range results {
		for _, off := range live {
			if seen[off] {
				t.Fatalf("block %#x live twice", off)
			}
			seen[off] = true
		}
	}
}

func TestRecoverPreservesReachable(t *testing.T) {
	h := testHeap(t, true)
	hd := h.NewHandle()
	r := h.Region()
	// Durable linked list.
	var prev uint64
	for i := 0; i < 200; i++ {
		off := hd.Malloc(64)
		if prev == 0 {
			r.Store(off, pptr.Nil)
		} else {
			r.Store(off, pptr.Pack(off, prev))
		}
		r.Store(off+8, uint64(i))
		r.FlushRange(off, 16)
		r.Fence()
		prev = off
	}
	h.SetRoot(0, prev)
	// Leak some unattached blocks.
	for i := 0; i < 1000; i++ {
		hd.Malloc(64)
	}
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	// Walk survives.
	n := 0
	off := h.GetRoot(0)
	seen := map[uint64]bool{}
	for off != 0 {
		seen[off] = true
		n++
		next, ok := pptr.Unpack(off, r.Load(off))
		if !ok {
			break
		}
		off = next
	}
	if n != 200 {
		t.Fatalf("list length after recovery = %d, want 200", n)
	}
	// Fresh allocations avoid the survivors.
	hd2 := h.NewHandle()
	for i := 0; i < 5000; i++ {
		o := hd2.Malloc(64)
		if o == 0 {
			t.Fatal("OOM after recovery")
		}
		if seen[o] {
			t.Fatalf("reachable block %#x re-allocated", o)
		}
	}
}

func TestRecoverReclaimsLeaks(t *testing.T) {
	h := testHeap(t, true)
	hd := h.NewHandle()
	for i := 0; i < 3000; i++ {
		hd.Malloc(64)
	}
	bumpBefore := h.Region().Load(offBump)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	if err := h.Recover(); err != nil {
		t.Fatal(err)
	}
	hd2 := h.NewHandle()
	for i := 0; i < 3000; i++ {
		if hd2.Malloc(64) == 0 {
			t.Fatal("OOM")
		}
	}
	if h.Region().Load(offBump) > bumpBefore {
		t.Fatal("leaked blocks were not reclaimed")
	}
}

func TestCloseClearsDirty(t *testing.T) {
	h := testHeap(t, true)
	hd := h.NewHandle()
	hd.Malloc(64)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if h.Region().Load(offDirty) != 0 {
		t.Fatal("dirty flag still set after Close")
	}
	// Re-attach reports clean.
	_, dirty, err := Attach(h.Region())
	if err != nil {
		t.Fatal(err)
	}
	if dirty {
		t.Fatal("clean heap reported dirty")
	}
}

func TestAttachAfterCrashReportsDirty(t *testing.T) {
	h := testHeap(t, true)
	h.NewHandle().Malloc(64)
	if err := h.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	_, dirty, err := Attach(h.Region())
	if err != nil {
		t.Fatal(err)
	}
	if !dirty {
		t.Fatal("crashed heap reported clean")
	}
}
