package makalu

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloctest"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(size uint64) (alloc.Allocator, error) {
		return New(Config{HeapSize: size})
	})
}
