package makalu

import (
	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

// Recover performs Makalu's post-crash recovery: conservative garbage
// collection from the persistent roots, followed by reconstruction of the
// central free lists so that all and only the reachable blocks are
// allocated. Makalu pioneered this GC-based approach for persistent
// allocators; Ralloc adopts it (§1), so the models share the protocol while
// differing — deliberately — in their normal-operation cost.
func (h *Heap) Recover() error {
	r := h.region
	bump := r.Load(offBump)

	// Index every block by walking the chunk headers. Chunk metadata is
	// persisted before use, so this walk sees every block that can be
	// reachable.
	type chunkInfo struct {
		kind      uint64
		blockSize uint64
		nChunks   uint64
	}
	nChunksTotal := (bump - carveOff) / ChunkBytes
	chunks := make([]chunkInfo, nChunksTotal)
	for i := range chunks {
		c := carveOff + uint64(i)*ChunkBytes
		chunks[i] = chunkInfo{r.Load(c), r.Load(c + 8), r.Load(c + 16)}
	}

	chunkIdx := func(off uint64) (int, bool) {
		if off < carveOff+chunkHdr || off >= bump {
			return 0, false
		}
		return int((off - carveOff) / ChunkBytes), true
	}

	// validBlock reports whether off is an allocatable block boundary.
	validBlock := func(off uint64) (size uint64, ok bool) {
		i, ok := chunkIdx(off)
		if !ok {
			return 0, false
		}
		ci := chunks[i]
		base := carveOff + uint64(i)*ChunkBytes
		switch ci.kind {
		case chunkSmall:
			if ci.blockSize == 0 || sizeclass.SizeToClass(ci.blockSize) == 0 {
				return 0, false
			}
			d := off - base - chunkHdr
			if off < base+chunkHdr || d%ci.blockSize != 0 ||
				d/ci.blockSize >= blocksPerChunk(ci.blockSize) {
				return 0, false
			}
			return ci.blockSize, true
		case chunkLarge:
			if off != base+chunkHdr || ci.blockSize == 0 {
				return 0, false
			}
			return ci.blockSize, true
		default:
			return 0, false
		}
	}

	// Conservative trace.
	marked := make(map[uint64]bool)
	var stack []uint64
	visit := func(off uint64) {
		if _, ok := validBlock(off); ok && !marked[off] {
			marked[off] = true
			stack = append(stack, off)
		}
	}
	for i := 0; i < numRoots; i++ {
		slot := rootOff(i)
		if off, ok := pptr.Unpack(slot, r.Load(slot)); ok {
			visit(off)
		}
	}
	for len(stack) > 0 {
		off := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		size, _ := validBlock(off)
		end := off + size&^7
		if end > bump {
			end = bump
		}
		for o := off; o < end; o += 8 {
			if t, ok := pptr.Unpack(o, r.Load(o)); ok {
				visit(t)
			}
		}
	}

	// Reconstruct the free lists: all and only the unmarked blocks.
	for c := 0; c <= sizeclass.NumClasses; c++ {
		r.Store(classHeadOff(c), 0)
	}
	r.Store(offLarge, 0)
	skip := uint64(0)
	for i := 0; i < len(chunks); i++ {
		if skip > 0 {
			skip--
			continue
		}
		base := carveOff + uint64(i)*ChunkBytes
		ci := chunks[i]
		switch ci.kind {
		case chunkSmall:
			c := sizeclass.SizeToClass(ci.blockSize)
			if c == 0 || ci.blockSize != sizeclass.ClassToSize(c) {
				h.retireChunkRun(base, 1)
				continue
			}
			head := classHeadOff(c)
			total := blocksPerChunk(ci.blockSize)
			for b := uint64(0); b < total; b++ {
				off := base + chunkHdr + b*ci.blockSize
				if marked[off] {
					continue
				}
				r.Store(off, r.Load(head))
				r.Store(head, off)
			}
		case chunkLarge:
			n := ci.nChunks
			if n == 0 || uint64(i)+n > nChunksTotal {
				h.retireChunkRun(base, 1)
				continue
			}
			skip = n - 1
			if !marked[base+chunkHdr] {
				b := base + chunkHdr
				r.Store(b, r.Load(offLarge))
				r.Store(offLarge, b)
			}
		case chunkCont:
			// Orphaned continuation (crash during a large carve):
			// recycle it as a one-chunk large run.
			h.retireChunkRun(base, 1)
		default:
			// Never initialized; recycle likewise.
			h.retireChunkRun(base, 1)
		}
	}
	r.FlushRange(0, r.Size())
	r.Fence()
	return nil
}

// retireChunkRun turns n contiguous chunks into a free large run on the
// large list so no memory is stranded by crashes.
func (h *Heap) retireChunkRun(base uint64, n uint64) {
	r := h.region
	r.Store(base, chunkLarge)
	r.Store(base+8, n*ChunkBytes-chunkHdr)
	r.Store(base+16, n)
	b := base + chunkHdr
	r.Store(b, r.Load(offLarge))
	r.Store(offLarge, b)
}
