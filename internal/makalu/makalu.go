// Package makalu models HPE's Makalu (Bhandari et al., OOPSLA 2016), the
// lock-based persistent allocator the paper uses as its primary baseline.
//
// The model reproduces the cost structure the paper attributes Makalu's
// performance to (§6.2: "the earlier systems must log and flush multiple
// words in synchronized allocator operation"):
//
//   - central per-size-class free lists protected by mutexes, with a small
//     persistent log written, flushed and fenced around every central-list
//     operation, and persistent list links flushed on every push;
//   - memory carved in 64 KB chunks whose class metadata is persisted
//     (flushed + fenced) before any block is handed out, so post-crash GC
//     can size every block;
//   - small per-thread caches in front of the central lists that return
//     only *half* of their blocks when they overflow — the locality detail
//     the paper credits for Makalu's memcached edge (§6.3);
//   - GC-based recovery: like Ralloc, Makalu supplements malloc/free with
//     post-crash conservative collection from persistent roots.
//
// The intent is parity of algorithmic costs, not line-for-line fidelity:
// what matters for reproducing Figures 5a–5f is lock-based synchronization
// plus O(1) flushes+fences per operation, versus Ralloc's lock-free fast
// path with near-zero flushes.
package makalu

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/sizeclass"
)

// Heap-header field offsets.
const (
	offMagic = 0
	offDirty = 8
	offBump  = 16 // next free chunk byte                [flushed]
	offEnd   = 24
	offLarge = 32 // large free-list head                [flushed]
	offClass = 64 // 40 entries × 16 B: free-list head, pad
	offLog   = 768
	offRoots = 4096
	numRoots = 1024

	// ChunkBytes is the carve granularity; chunk 0 starts at carveOff,
	// which is chunk-aligned.
	ChunkBytes = 1 << 16
	carveOff   = ChunkBytes
	chunkHdr   = 64 // per-chunk header: kind, blockSize, nChunks

	makMagic  = 0x314B414D // "MAK1"
	refillN   = 16
	tcacheCap = 32
)

// Chunk kinds.
const (
	chunkFree  = 0 // never used
	chunkSmall = 1 // holds blocks of one size class
	chunkLarge = 2 // first chunk of a large run
	chunkCont  = 3 // continuation of a large run
)

// Config controls the model.
type Config struct {
	HeapSize uint64 // total region size; default 64 MB
	Pmem     pmem.Config
}

// Heap is a Makalu-model heap.
type Heap struct {
	region *pmem.Region
	end    uint64

	classMu [sizeclass.NumClasses + 1]sync.Mutex
	largeMu sync.Mutex
	logMu   sync.Mutex

	mu      sync.Mutex
	handles []*Handle
	closed  bool
}

// New creates a fresh Makalu-model heap.
func New(cfg Config) (*Heap, error) {
	if cfg.HeapSize == 0 {
		cfg.HeapSize = 64 << 20
	}
	if cfg.HeapSize < carveOff+ChunkBytes {
		return nil, errors.New("makalu: heap too small")
	}
	size := cfg.HeapSize / ChunkBytes * ChunkBytes
	region := pmem.NewRegion(size, cfg.Pmem)
	h := &Heap{region: region, end: region.Size()}
	region.Store(offEnd, h.end)
	region.Store(offBump, carveOff)
	region.Store(offDirty, 1)
	region.Store(offMagic, makMagic)
	region.FlushRange(0, offRoots+numRoots*8)
	region.Fence()
	return h, nil
}

// Attach re-attaches to an existing region image, returning whether the
// previous session crashed (dirty).
func Attach(region *pmem.Region) (*Heap, bool, error) {
	if region.Load(offMagic) != makMagic {
		return nil, false, errors.New("makalu: region is not a Makalu heap")
	}
	h := &Heap{region: region, end: region.Load(offEnd)}
	dirty := region.Load(offDirty) != 0
	region.Store(offDirty, 1)
	region.Flush(offDirty)
	region.Fence()
	return h, dirty, nil
}

// Name implements alloc.Allocator.
func (h *Heap) Name() string { return "makalu" }

// Region implements alloc.Allocator.
func (h *Heap) Region() *pmem.Region { return h.region }

func classHeadOff(c int) uint64 { return offClass + uint64(c)*16 }
func rootOff(i int) uint64      { return offRoots + uint64(i)*8 }

func chunkStart(off uint64) uint64 { return off &^ (ChunkBytes - 1) }

// blocksPerChunk returns the capacity of a small chunk of the given class.
func blocksPerChunk(blockSize uint64) uint64 {
	return (ChunkBytes - chunkHdr) / blockSize
}

// logOp writes a tiny redo record and flushes+fences it — the
// per-operation persistence cost of a logging allocator.
func (h *Heap) logOp(op, a, b uint64) {
	r := h.region
	h.logMu.Lock()
	r.Store(offLog, op)
	r.Store(offLog+8, a)
	r.Store(offLog+16, b)
	r.Flush(offLog)
	r.Fence()
	h.logMu.Unlock()
}

// carveChunks reserves n contiguous chunks, returning the offset of the
// first or 0 when the heap is exhausted.
func (h *Heap) carveChunks(n uint64) uint64 {
	r := h.region
	need := n * ChunkBytes
	for {
		bump := r.Load(offBump)
		if bump+need > h.end {
			return 0
		}
		if r.CAS(offBump, bump, bump+need) {
			r.Flush(offBump)
			r.Fence()
			return bump
		}
	}
}

// Handle is a per-goroutine cache.
type Handle struct {
	heap    *Heap
	invalid bool
	cache   [sizeclass.NumClasses + 1][]uint64
}

// NewHandle implements alloc.Allocator.
func (h *Heap) NewHandle() alloc.Handle {
	hd := &Handle{heap: h}
	h.mu.Lock()
	h.handles = append(h.handles, hd)
	h.mu.Unlock()
	return hd
}

// Malloc allocates size bytes.
func (hd *Handle) Malloc(size uint64) uint64 {
	if hd.invalid {
		panic("makalu: stale handle")
	}
	c := sizeclass.SizeToClass(size)
	if c == 0 {
		return hd.heap.mallocLarge(size)
	}
	tc := &hd.cache[c]
	if len(*tc) == 0 && !hd.refill(c) {
		return 0
	}
	n := len(*tc) - 1
	off := (*tc)[n]
	*tc = (*tc)[:n]
	return off
}

// refill takes up to refillN blocks from the central list — logging and
// flushing around each pop — carving a fresh chunk if the list runs dry.
func (hd *Handle) refill(c int) bool {
	h := hd.heap
	r := h.region
	blockSize := sizeclass.ClassToSize(c)
	h.classMu[c].Lock()
	defer h.classMu[c].Unlock()

	head := classHeadOff(c)
	got := 0
	for got < refillN {
		b := r.Load(head)
		if b == 0 {
			break
		}
		next := r.Load(b)
		h.logOp(1, b, next)
		r.Store(head, next)
		r.Flush(head)
		r.Fence()
		hd.cache[c] = append(hd.cache[c], b)
		got++
	}
	if got > 0 {
		return true
	}

	// Carve a fresh chunk. Its class metadata is persisted before any
	// block escapes, so recovery can size every block (same protocol as
	// Ralloc's superblock init).
	chunk := h.carveChunks(1)
	if chunk == 0 {
		return false
	}
	r.Store(chunk, chunkSmall)
	r.Store(chunk+8, blockSize)
	r.Store(chunk+16, 1)
	r.Flush(chunk)
	r.Fence()
	total := blocksPerChunk(blockSize)
	take := uint64(refillN)
	if take > total {
		take = total
	}
	for i := uint64(0); i < take; i++ {
		hd.cache[c] = append(hd.cache[c], chunk+chunkHdr+i*blockSize)
	}
	// Surplus blocks go to the central list as one chained push.
	if total > take {
		var first, last uint64
		for i := total; i > take; i-- {
			b := chunk + chunkHdr + (i-1)*blockSize
			r.Store(b, first)
			if last == 0 {
				last = b
			}
			first = b
		}
		old := r.Load(head)
		r.Store(last, old)
		r.Flush(last)
		h.logOp(2, first, old)
		r.Store(head, first)
		r.Flush(head)
		r.Fence()
	}
	return true
}

// Free deallocates a block.
func (hd *Handle) Free(off uint64) {
	if off == 0 {
		return
	}
	if hd.invalid {
		panic("makalu: stale handle")
	}
	h := hd.heap
	if off < carveOff+chunkHdr || off >= h.end {
		panic(fmt.Sprintf("makalu: Free(%#x): outside heap", off))
	}
	r := h.region
	chunk := chunkStart(off)
	kind := r.Load(chunk)
	switch kind {
	case chunkSmall:
		blockSize := r.Load(chunk + 8)
		if (off-chunk-chunkHdr)%blockSize != 0 {
			panic(fmt.Sprintf("makalu: Free(%#x): not a block boundary", off))
		}
		c := sizeclass.SizeToClass(blockSize)
		tc := &hd.cache[c]
		*tc = append(*tc, off)
		if len(*tc) > tcacheCap {
			hd.drainHalf(c)
		}
	case chunkLarge:
		if off != chunk+chunkHdr {
			panic(fmt.Sprintf("makalu: Free(%#x): not the start of a large block", off))
		}
		h.freeLarge(chunk)
	default:
		panic(fmt.Sprintf("makalu: Free(%#x): block not allocated (chunk kind %d)", off, kind))
	}
}

// Flush returns every cached block to the central lists (clean thread
// exit). The handle remains usable.
func (hd *Handle) Flush() {
	for c := 1; c <= sizeclass.NumClasses; c++ {
		if len(hd.cache[c]) > 0 {
			hd.heap.pushCentral(c, hd.cache[c])
			hd.cache[c] = hd.cache[c][:0]
		}
	}
}

// drainHalf returns the oldest half of the cache to the central list —
// Makalu's locality-preserving policy (§6.3).
func (hd *Handle) drainHalf(c int) {
	blocks := hd.cache[c]
	n := len(blocks) / 2
	hd.heap.pushCentral(c, blocks[:n])
	hd.cache[c] = append(hd.cache[c][:0], blocks[n:]...)
}

func (h *Heap) pushCentral(c int, blocks []uint64) {
	r := h.region
	head := classHeadOff(c)
	h.classMu[c].Lock()
	for _, b := range blocks {
		old := r.Load(head)
		r.Store(b, old)
		r.Flush(b)
		h.logOp(2, b, old)
		r.Store(head, b)
		r.Flush(head)
		r.Fence()
	}
	h.classMu[c].Unlock()
}

// mallocLarge serves >14 KB requests from a first-fit run list, falling
// back to carving whole chunks.
func (h *Heap) mallocLarge(size uint64) uint64 {
	r := h.region
	nChunks := (size + chunkHdr + ChunkBytes - 1) / ChunkBytes
	h.largeMu.Lock()
	defer h.largeMu.Unlock()
	// First fit over the run list (runs chain through their first data
	// word).
	prev := uint64(offLarge)
	b := r.Load(offLarge)
	for b != 0 {
		chunk := chunkStart(b)
		if r.Load(chunk+16) >= nChunks {
			next := r.Load(b)
			h.logOp(3, b, next)
			r.Store(prev, next)
			r.Flush(prev)
			// Re-mark the run allocated.
			r.Store(chunk, chunkLarge)
			r.Flush(chunk)
			r.Fence()
			return b
		}
		prev = b
		b = r.Load(b)
	}
	chunk := h.carveChunks(nChunks)
	if chunk == 0 {
		return 0
	}
	for i := uint64(1); i < nChunks; i++ {
		cc := chunk + i*ChunkBytes
		r.Store(cc, chunkCont)
		r.Flush(cc)
	}
	if nChunks > 1 {
		r.Fence()
	}
	r.Store(chunk, chunkLarge)
	r.Store(chunk+8, size)
	r.Store(chunk+16, nChunks)
	r.Flush(chunk)
	r.Fence()
	return chunk + chunkHdr
}

// freeLarge pushes the run onto the large free list; the run keeps its
// chunk count so it can be reused by first fit. The kind is flipped to a
// free marker persistently so recovery does not resurrect it by accident —
// although GC would reclaim it anyway if unreachable.
func (h *Heap) freeLarge(chunk uint64) {
	r := h.region
	b := chunk + chunkHdr
	h.largeMu.Lock()
	old := r.Load(offLarge)
	r.Store(b, old)
	r.Flush(b)
	h.logOp(4, b, old)
	r.Store(offLarge, b)
	r.Flush(offLarge)
	r.Fence()
	h.largeMu.Unlock()
}

// SetRoot registers a persistent root (off-holder, flushed).
func (h *Heap) SetRoot(i int, off uint64) {
	slot := rootOff(i)
	if off == 0 {
		h.region.Store(slot, pptr.Nil)
	} else {
		h.region.Store(slot, pptr.Pack(slot, off))
	}
	h.region.Flush(slot)
	h.region.Fence()
}

// GetRoot reads a persistent root.
func (h *Heap) GetRoot(i int) uint64 {
	slot := rootOff(i)
	off, ok := pptr.Unpack(slot, h.region.Load(slot))
	if !ok {
		return 0
	}
	return off
}

// Close cleanly shuts down: caches drained, everything written back, dirty
// flag cleared.
func (h *Heap) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return errors.New("makalu: already closed")
	}
	h.closed = true
	handles := h.handles
	h.handles = nil
	h.mu.Unlock()
	for _, hd := range handles {
		for c := 1; c <= sizeclass.NumClasses; c++ {
			if len(hd.cache[c]) > 0 {
				h.pushCentral(c, hd.cache[c])
				hd.cache[c] = nil
			}
		}
		hd.invalid = true
	}
	h.region.Persist()
	h.region.Store(offDirty, 0)
	h.region.Flush(offDirty)
	h.region.Fence()
	h.region.Persist()
	return nil
}

var _ alloc.Allocator = (*Heap)(nil)
var _ alloc.Recoverable = (*Heap)(nil)
