package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of every Histogram. The layout is
// log-spaced with two sub-buckets per power of two (a "log-linear" layout,
// the same family HdrHistogram and mimalloc's stat buckets use): bucket i
// covers durations whose top two binary digits select it, so the relative
// error of any reconstructed quantile is at most ~41% and typically far
// less after intra-bucket interpolation. 64 buckets at 2 per octave span
// 1 ns .. 2^32 ns (~4.3 s); longer durations clamp into the last bucket,
// whose true upper edge is still reported exactly via the Max word.
const HistBuckets = 64

// histBucketOf maps a non-negative nanosecond value to its bucket index.
// For ns >= 2 the index is 2*(bitlen-1) + (second-highest bit), which is
// monotone and contiguous: 2,3 land in buckets 2,3; [4,6) in 4; [6,8) in 5;
// [8,12) in 6; and so on.
func histBucketOf(ns uint64) int {
	if ns < 2 {
		return int(ns)
	}
	l := bits.Len64(ns)
	idx := 2*(l-1) + int((ns>>(l-2))&1)
	if idx >= HistBuckets {
		return HistBuckets - 1
	}
	return idx
}

// HistBucketLower returns the inclusive lower edge (ns) of bucket i.
func HistBucketLower(i int) uint64 {
	if i < 2 {
		return uint64(i)
	}
	return uint64(2+(i&1)) << (uint(i)/2 - 1)
}

// HistBucketUpper returns the exclusive upper edge (ns) of bucket i; the
// last bucket is unbounded and returns MaxUint64.
func HistBucketUpper(i int) uint64 {
	if i >= HistBuckets-1 {
		return math.MaxUint64
	}
	return HistBucketLower(i + 1)
}

// Histogram is a fixed-layout latency histogram safe for any number of
// concurrent recorders and readers. Record performs two atomic fetch-adds
// (bucket and sum) — wait-free on the architectures Go's sync/atomic maps
// to hardware fetch-add — plus a monotone max update whose CAS loop retries
// only while other recorders publish strictly larger values, so every
// recorder finishes in a bounded number of steps regardless of scheduling.
// Recording allocates nothing (TestHistogramRecordNoAlloc pins this).
//
// The zero value is ready to use. Histograms must not be copied after use.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	max     atomic.Uint64 // largest single recording, exact
}

// Record adds one duration. Negative durations (clock steps) record as 0.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[histBucketOf(ns)].Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Snapshot copies the histogram's current state. Concurrent recordings may
// or may not be included (each recording's bucket/sum/max updates land
// independently), but every count observed is a real recording and the
// snapshot is internally consistent enough for quantile estimates — the
// documented (and tested) contract under live traffic.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Reset zeroes the histogram. Concurrent recordings may survive partially;
// Reset is a debugging/administrative operation, not a synchronization one.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.max.Store(0)
}

// HistSnapshot is an immutable copy of a Histogram, mergeable with others
// (per-shard or per-command histograms aggregate by bucket-wise addition).
type HistSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64 // ns
	Max     uint64 // ns
}

// Merge adds o into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the mean recorded duration in nanoseconds (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) in nanoseconds by linear
// interpolation inside the covering bucket. The top bucket interpolates
// toward the exact Max, so Quantile(1) == Max.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	} else if q >= 1 {
		return float64(s.Max)
	}
	rank := q * float64(s.Count)
	cum := float64(0)
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo := float64(HistBucketLower(i))
			hi := float64(HistBucketUpper(i))
			if i == HistBuckets-1 || hi > float64(s.Max) {
				hi = float64(s.Max)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return float64(s.Max)
}
