package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Collector contributes samples to one /metrics render. Implementations
// must be safe for concurrent scrapes and should read their sources with
// the same relaxed-snapshot semantics the rest of obs uses.
type Collector interface {
	Collect(e *Emitter)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(e *Emitter)

// Collect implements Collector.
func (f CollectorFunc) Collect(e *Emitter) { f(e) }

// Registry is a set of Collectors rendered together as Prometheus text
// exposition format (version 0.0.4) — hand-rolled, no dependencies.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector to every future render.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// snapshot copies the collector list out from under the mutex, so a slow
// Collect never renders while holding the registry lock.
func (r *Registry) snapshot() []Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Collector(nil), r.collectors...)
}

// WriteText renders every collector's samples as Prometheus text.
func (r *Registry) WriteText(w io.Writer) error {
	collectors := r.snapshot()
	bw := bufio.NewWriter(w)
	e := &Emitter{w: bw}
	for _, c := range collectors {
		c.Collect(e)
	}
	return bw.Flush()
}

// Emitter renders one collector pass. Families are announced once with
// Family (HELP/TYPE headers); samples follow with Value/Histogram.
type Emitter struct {
	w        *bufio.Writer
	families map[string]bool
}

// Family writes the # HELP / # TYPE header for a metric family, once per
// render. typ is "counter", "gauge", or "histogram".
func (e *Emitter) Family(name, typ, help string) {
	if e.families == nil {
		e.families = map[string]bool{}
	}
	if e.families[name] {
		return
	}
	e.families[name] = true
	fmt.Fprintf(e.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Single announces a single-sample family and writes its one value — the
// common shape for server-wide gauges and counters, collapsing the
// Family+Value pair call sites would otherwise repeat.
func (e *Emitter) Single(name, typ, help string, v float64) {
	e.Family(name, typ, help)
	e.Value(name, v)
}

// Value writes one sample. labels are alternating key, value pairs.
func (e *Emitter) Value(name string, v float64, labels ...string) {
	e.w.WriteString(name)
	writeLabels(e.w, labels, "", 0, false)
	e.w.WriteByte(' ')
	e.w.WriteString(formatValue(v))
	e.w.WriteByte('\n')
}

// Histogram writes a full Prometheus histogram — cumulative _bucket series
// with le edges in seconds, plus _sum (seconds) and _count — from a
// snapshot. Empty buckets between populated ones are skipped (the series
// stays cumulative and therefore still valid for histogram_quantile).
func (e *Emitter) Histogram(name string, s *HistSnapshot, labels ...string) {
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if n == 0 && i != HistBuckets-1 {
			continue
		}
		le := "+Inf"
		if i != HistBuckets-1 {
			le = formatValue(float64(HistBucketUpper(i)) / 1e9)
		}
		e.w.WriteString(name + "_bucket")
		writeLabels(e.w, labels, "le", 0, true)
		e.w.WriteString(le)
		e.w.WriteString("\"} ")
		e.w.WriteString(strconv.FormatUint(cum, 10))
		e.w.WriteByte('\n')
	}
	e.Value(name+"_sum", float64(s.Sum)/1e9, labels...)
	e.Value(name+"_count", float64(s.Count), labels...)
}

// writeLabels renders {k="v",...}. When leKey is non-empty the brace is
// left open after writing `leKey="` so the caller appends the le value and
// closes it (avoids allocating per-bucket label slices).
func writeLabels(w *bufio.Writer, labels []string, leKey string, _ int, open bool) {
	if len(labels) == 0 && !open {
		return
	}
	w.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(labels[i])
		w.WriteString("=\"")
		w.WriteString(escapeLabel(labels[i+1]))
		w.WriteByte('"')
	}
	if open {
		if len(labels) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(leKey)
		w.WriteString("=\"")
		return
	}
	w.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a float the way Prometheus clients do: integers
// without an exponent, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortedNames is a small helper for collectors that render map-backed
// families deterministically.
func SortedNames[M ~map[string]V, V any](m M) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
