package obs

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterStriped(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NextStripe()
			for i := 0; i < 1000; i++ {
				c.AddStripe(s, 1)
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if got := c.Load(); got != 32*1000+5 {
		t.Fatalf("Load = %d, want %d", got, 32*1000+5)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("Load = %d, want 4", got)
	}
}

func TestSlowLogRingAndTruncation(t *testing.T) {
	l := NewSlowLog(3)
	args := func(ss ...string) [][]byte {
		out := make([][]byte, len(ss))
		for i, s := range ss {
			out[i] = []byte(s)
		}
		return out
	}
	for i := 0; i < 5; i++ {
		id := l.Add(int64(1000+i), time.Duration(i+1)*time.Millisecond, args("GET", fmt.Sprintf("k%d", i)))
		if id != int64(i) {
			t.Fatalf("entry %d: id %d", i, id)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	got := l.Get(-1)
	if len(got) != 3 || got[0].ID != 4 || got[1].ID != 3 || got[2].ID != 2 {
		t.Fatalf("Get(-1) order wrong: %+v", got)
	}
	if got[0].Args[1] != "k4" || got[0].Unix != 1004 {
		t.Fatalf("newest entry wrong: %+v", got[0])
	}
	if one := l.Get(1); len(one) != 1 || one[0].ID != 4 {
		t.Fatalf("Get(1): %+v", one)
	}

	// Truncation: >32 args collapse, long args clip.
	many := make([][]byte, 40)
	for i := range many {
		many[i] = []byte(fmt.Sprintf("a%d", i))
	}
	many[0] = []byte(strings.Repeat("x", 200))
	l.Add(2000, time.Second, many)
	e := l.Get(1)[0]
	if len(e.Args) != slowMaxArgs {
		t.Fatalf("truncated args len = %d, want %d", len(e.Args), slowMaxArgs)
	}
	if want := strings.Repeat("x", slowMaxArgLen) + "..."; e.Args[0] != want {
		t.Fatalf("long arg not clipped: %q", e.Args[0][:20])
	}
	if e.Args[slowMaxArgs-1] != "... (9 more arguments)" {
		t.Fatalf("marker arg = %q", e.Args[slowMaxArgs-1])
	}

	// Reset clears entries but IDs keep increasing.
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Len after Reset = %d", l.Len())
	}
	if id := l.Add(3000, time.Second, args("PING")); id != 6 {
		t.Fatalf("id after Reset = %d, want 6", id)
	}
}

func TestEvents(t *testing.T) {
	e := NewEvents()
	base := time.Unix(5000, 0)
	e.Record("checkpoint", base, 10*time.Millisecond)
	e.Record("checkpoint", base.Add(time.Second), 30*time.Millisecond)
	e.Record("expiry-cycle", base, 2*time.Millisecond)

	latest := e.Latest()
	if len(latest) != 2 || latest[0].Name != "checkpoint" || latest[1].Name != "expiry-cycle" {
		t.Fatalf("Latest: %+v", latest)
	}
	if latest[0].Latest != 30*time.Millisecond || latest[0].Max != 30*time.Millisecond || latest[0].Unix != 5001 {
		t.Fatalf("checkpoint row: %+v", latest[0])
	}

	hist := e.History("checkpoint")
	if len(hist) != 2 || hist[0].Dur != 10*time.Millisecond || hist[1].Dur != 30*time.Millisecond {
		t.Fatalf("History: %+v", hist)
	}
	if e.History("nope") != nil {
		t.Fatalf("History of unknown event not nil")
	}

	// Ring wraps at EventHistory samples.
	for i := 0; i < EventHistory+10; i++ {
		e.Record("busy", base, time.Duration(i))
	}
	if got := len(e.History("busy")); got != EventHistory {
		t.Fatalf("wrapped history len = %d", got)
	}

	if n := e.Reset("checkpoint", "nope"); n != 1 {
		t.Fatalf("Reset named = %d, want 1", n)
	}
	if n := e.Reset(); n != 2 {
		t.Fatalf("Reset all = %d, want 2", n)
	}
	if len(e.Latest()) != 0 {
		t.Fatalf("Latest after reset: %+v", e.Latest())
	}
}

func TestPrometheusText(t *testing.T) {
	reg := NewRegistry()
	var h Histogram
	h.Record(3 * time.Microsecond)
	h.Record(100 * time.Millisecond)
	reg.Register(CollectorFunc(func(e *Emitter) {
		e.Family("test_ops_total", "counter", "Ops processed.")
		e.Value("test_ops_total", 42, "cmd", "get")
		e.Value("test_ops_total", 7, "cmd", `we"ird\na`)
		e.Family("test_latency_seconds", "histogram", "Latency.")
		s := h.Snapshot()
		e.Histogram("test_latency_seconds", &s, "cmd", "get")
		e.Family("test_temp", "gauge", "A gauge.")
		e.Value("test_temp", 1.5)
	}))
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wants := []string{
		"# HELP test_ops_total Ops processed.\n# TYPE test_ops_total counter\n",
		`test_ops_total{cmd="get"} 42`,
		`test_ops_total{cmd="we\"ird\\na"} 7`,
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{cmd="get",le="+Inf"} 2`,
		`test_latency_seconds_count{cmd="get"} 2`,
		`test_latency_seconds_sum{cmd="get"} 0.100003`,
		"test_temp 1.5\n",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	// Buckets must be cumulative and end at +Inf with the total count.
	if !strings.HasSuffix(strings.TrimSpace(lastBucketLine(out)), " 2") {
		t.Errorf("last bucket not cumulative total:\n%s", out)
	}
}

func lastBucketLine(s string) string {
	last := ""
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "_bucket{") {
			last = line
		}
	}
	return last
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Register(CollectorFunc(func(e *Emitter) {
		e.Family("up", "gauge", "Always one.")
		e.Value("up", 1)
	}))
	h := NewHTTPHandler(reg)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "up 1") {
		t.Fatalf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/heap", nil))
	if rec.Code != 200 || rec.Body.Len() == 0 {
		t.Fatalf("/debug/pprof/heap: code %d len %d", rec.Code, rec.Body.Len())
	}
}

// TestObsRaceStress exercises every obs structure from concurrent writers
// and readers at once; meaningful mainly under -race.
func TestObsRaceStress(t *testing.T) {
	var h Histogram
	var c Counter
	ev := NewEvents()
	sl := NewSlowLog(16)
	reg := NewRegistry()
	reg.Register(CollectorFunc(func(e *Emitter) {
		e.Family("stress_total", "counter", "stress")
		e.Value("stress_total", float64(c.Load()))
		s := h.Snapshot()
		e.Family("stress_seconds", "histogram", "stress")
		e.Histogram("stress_seconds", &s)
	}))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NextStripe()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Record(time.Duration(i%1000) * time.Microsecond)
				c.AddStripe(s, 1)
				if i%100 == 0 {
					ev.Record("stress", time.Unix(int64(i), 0), time.Duration(i))
					sl.Add(int64(i), time.Duration(i), [][]byte{[]byte("SET"), []byte("k")})
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf.Reset()
				_ = reg.WriteText(&buf)
				_ = sl.Get(-1)
				_ = ev.Latest()
				_ = ev.History("stress")
				s := h.Snapshot()
				_ = s.Quantile(0.999)
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
