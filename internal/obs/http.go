package obs

import (
	"net/http"
	"net/http/pprof"
)

// NewHTTPHandler serves a registry's /metrics plus the runtime profiling
// endpoints under /debug/pprof/ on a private mux — the process's default
// ServeMux stays untouched, so importing obs never silently exposes
// profiling on someone else's listener.
func NewHTTPHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
