// Package obs is the observability core: allocation-free, lock-free latency
// histograms, cache-line-padded striped counters, a Redis-style latency
// event timeline and slow log, and a hand-rolled Prometheus text registry
// with an HTTP handler that also serves net/http/pprof.
//
// The package is deliberately stdlib-only and persistent-heap-free: nothing
// in obs may import the pmem/ralloc/kvstore layers or touch a pmem.Region —
// telemetry must never be able to perturb crash consistency. ralloc-vet's
// obspurity analyzer enforces that boundary statically, and the deferunlock
// analyzer guards the package's (slow-path-only) mutexes.
//
// Layering: obs sits below everything (it imports nothing of the repo), and
// the serving/allocator layers push measurements into it — the dispatch
// pipeline records per-command histograms and the slow log, checkpoint and
// recovery paths record timeline events, and the allocator exposes per-shard
// counters through the Collector interface for the /metrics endpoint.
package obs
