package obs

import (
	"strconv"
	"sync"
	"time"
)

// Slow-log argument containment, Redis's exact policy: at most 32 arguments
// are retained per entry (the 32nd slot becomes a "... (N more arguments)"
// marker) and each retained argument is clipped to 128 bytes with a "..."
// suffix — a slow MSET of maxBulkLen values must cost the log a few KB, not
// pin the command's whole payload.
const (
	slowMaxArgs    = 32
	slowMaxArgLen  = 128
	defaultSlowLen = 128
)

// SlowEntry is one over-threshold command execution.
type SlowEntry struct {
	ID   int64 // unique, monotonically increasing
	Unix int64 // when the command finished, seconds
	Dur  time.Duration
	Args []string // truncated per the containment policy
}

// SlowLog is a bounded ring of the slowest commands, fed by the dispatch
// pipeline when an execution exceeds the configured threshold. Appends copy
// (and truncate) the argument vector, so entries stay valid after the
// connection's scratch buffers are reused; the mutex is fine because an
// append already implies a command that took >= the threshold.
type SlowLog struct {
	mu     sync.Mutex
	ring   []SlowEntry
	n      int // entries stored (<= len(ring))
	pos    int // next write index
	nextID int64
}

// NewSlowLog returns a slow log retaining at most maxLen entries
// (defaultSlowLen when maxLen <= 0).
func NewSlowLog(maxLen int) *SlowLog {
	if maxLen <= 0 {
		maxLen = defaultSlowLen
	}
	return &SlowLog{ring: make([]SlowEntry, maxLen)}
}

// Add records one slow execution and returns its ID.
func (l *SlowLog) Add(unix int64, d time.Duration, args [][]byte) int64 {
	entry := SlowEntry{Unix: unix, Dur: d, Args: truncateArgs(args)}
	l.mu.Lock()
	defer l.mu.Unlock()
	entry.ID = l.nextID
	l.nextID++
	l.ring[l.pos] = entry
	l.pos = (l.pos + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	return entry.ID
}

// truncateArgs copies args under the containment policy.
func truncateArgs(args [][]byte) []string {
	keep := len(args)
	marker := false
	if keep > slowMaxArgs {
		keep = slowMaxArgs - 1
		marker = true
	}
	out := make([]string, 0, keep+1)
	for _, a := range args[:keep] {
		if len(a) > slowMaxArgLen {
			out = append(out, string(a[:slowMaxArgLen])+"...")
		} else {
			out = append(out, string(a))
		}
	}
	if marker {
		out = append(out, "... ("+strconv.Itoa(len(args)-keep)+" more arguments)")
	}
	return out
}

// Get returns up to n entries, newest first (n < 0: all retained entries).
func (l *SlowLog) Get(n int) []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 || n > l.n {
		n = l.n
	}
	out := make([]SlowEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.ring[(l.pos-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Len reports how many entries are retained.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Reset discards all entries (IDs keep increasing, like Redis).
func (l *SlowLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	clear(l.ring)
	l.n = 0
	l.pos = 0
}
