package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketLayout pins the log-linear layout: indices are
// monotone, edges are contiguous, and every value lands between its
// bucket's edges.
func TestHistogramBucketLayout(t *testing.T) {
	// Contiguity: bucket i's upper edge is bucket i+1's lower edge.
	for i := 0; i < HistBuckets-1; i++ {
		if HistBucketUpper(i) != HistBucketLower(i+1) {
			t.Fatalf("bucket %d: upper %d != next lower %d", i, HistBucketUpper(i), HistBucketLower(i+1))
		}
	}
	// Hand-checked anchors of the 2-sub-buckets-per-octave scheme.
	anchors := map[uint64]int{
		0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 4, 6: 5, 7: 5,
		8: 6, 11: 6, 12: 7, 15: 7, 16: 8, 1000: 19,
	}
	for ns, want := range anchors {
		if got := histBucketOf(ns); got != want {
			t.Errorf("histBucketOf(%d) = %d, want %d", ns, got, want)
		}
	}
	// Every value maps into [lower, upper).
	for _, ns := range []uint64{0, 1, 2, 3, 7, 63, 64, 65, 999, 1 << 20, 1<<32 - 1, 1 << 40, math.MaxUint64} {
		i := histBucketOf(ns)
		if i < 0 || i >= HistBuckets {
			t.Fatalf("histBucketOf(%d) = %d out of range", ns, i)
		}
		if ns < HistBucketLower(i) {
			t.Errorf("ns %d below bucket %d lower %d", ns, i, HistBucketLower(i))
		}
		if i < HistBuckets-1 && ns >= HistBucketUpper(i) {
			t.Errorf("ns %d at/above bucket %d upper %d", ns, i, HistBucketUpper(i))
		}
	}
	// Monotone across a dense sweep.
	prev := 0
	for ns := uint64(0); ns < 1<<16; ns++ {
		i := histBucketOf(ns)
		if i < prev {
			t.Fatalf("non-monotone at ns=%d: %d < %d", ns, i, prev)
		}
		prev = i
	}
}

// TestHistogramRecordNoAlloc pins the zero-allocation contract of the
// recording hot path (required by ISSUE 7's acceptance gates).
func TestHistogramRecordNoAlloc(t *testing.T) {
	var h Histogram
	d := 137 * time.Microsecond
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(d)
		d += time.Nanosecond
	})
	if allocs != 0 {
		t.Fatalf("Histogram.Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestHistogramSnapshotAndQuantiles(t *testing.T) {
	var h Histogram
	// 1000 recordings at 1us..1000us: p50 ~ 500us, p99 ~ 990us, max exact.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if s.Max != uint64(1000*time.Microsecond) {
		t.Fatalf("Max = %d, want %d", s.Max, 1000*time.Microsecond)
	}
	wantSum := uint64(0)
	for i := 1; i <= 1000; i++ {
		wantSum += uint64(i) * 1000
	}
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	// Bucketed quantiles carry <=41% worst-case relative error; check 50%.
	checks := []struct {
		q    float64
		want float64 // ns
	}{{0.5, 500e3}, {0.99, 990e3}, {0.999, 999e3}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want*0.5 || got > c.want*1.5 {
			t.Errorf("Quantile(%v) = %.0f, want within 50%% of %.0f", c.q, got, c.want)
		}
	}
	if got := s.Quantile(1); got != float64(s.Max) {
		t.Errorf("Quantile(1) = %.0f, want exact max %d", got, s.Max)
	}
	if got := s.Mean(); math.Abs(got-float64(wantSum)/1000) > 1e-6 {
		t.Errorf("Mean = %v, want %v", got, float64(wantSum)/1000)
	}

	h.Reset()
	s = h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("after Reset: %+v", s)
	}
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot quantile/mean nonzero")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10 * time.Microsecond)
	a.Record(20 * time.Microsecond)
	b.Record(5 * time.Millisecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Count != 3 {
		t.Fatalf("merged Count = %d, want 3", sa.Count)
	}
	if sa.Max != uint64(5*time.Millisecond) {
		t.Fatalf("merged Max = %d, want %d", sa.Max, 5*time.Millisecond)
	}
	if sa.Sum != uint64(30*time.Microsecond+5*time.Millisecond) {
		t.Fatalf("merged Sum = %d", sa.Sum)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// snapshotting concurrently; run under -race this validates the lock-free
// recording contract, and afterwards the totals must be exact.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 10000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				_ = s.Quantile(0.99)
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(w*perWorker+i) * time.Nanosecond)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("Count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.Max != uint64(workers*perWorker-1) {
		t.Fatalf("Max = %d, want %d", s.Max, workers*perWorker-1)
	}
}
