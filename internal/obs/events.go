package obs

import (
	"sort"
	"sync"
	"time"
)

// EventHistory is how many samples each event's ring retains (Redis's
// LATENCY HISTORY keeps 160).
const EventHistory = 160

// EventSample is one spike: when it happened and how long it took.
type EventSample struct {
	Unix int64 // seconds
	Dur  time.Duration
}

// EventLatest is one event's summary row (the LATENCY LATEST shape).
type EventLatest struct {
	Name   string
	Unix   int64 // time of the most recent sample
	Latest time.Duration
	Max    time.Duration
}

// event is one named timeline: a bounded ring of samples plus running max.
type event struct {
	ring [EventHistory]EventSample
	n    int // samples stored (<= EventHistory)
	pos  int // next write index
	max  time.Duration
}

// Events is a named latency-event timeline, the substrate of the LATENCY
// command family: checkpoint phases, expiry cycles, recovery phases and
// over-threshold commands record spikes here. Recording takes a mutex —
// every producer is a slow path by definition (a spike was just measured) —
// so the hot dispatch pipeline only reaches Events when a command actually
// exceeded the configured threshold.
type Events struct {
	mu sync.Mutex
	m  map[string]*event
}

// NewEvents returns an empty timeline.
func NewEvents() *Events { return &Events{m: map[string]*event{}} }

// Record appends one sample to the named event's history.
func (e *Events) Record(name string, at time.Time, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ev := e.m[name]
	if ev == nil {
		ev = &event{}
		e.m[name] = ev
	}
	ev.ring[ev.pos] = EventSample{Unix: at.Unix(), Dur: d}
	ev.pos = (ev.pos + 1) % EventHistory
	if ev.n < EventHistory {
		ev.n++
	}
	if d > ev.max {
		ev.max = d
	}
}

// Latest returns one summary row per event, sorted by name.
func (e *Events) Latest() []EventLatest {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]EventLatest, 0, len(e.m))
	for name, ev := range e.m {
		last := ev.ring[(ev.pos+EventHistory-1)%EventHistory]
		out = append(out, EventLatest{Name: name, Unix: last.Unix, Latest: last.Dur, Max: ev.max})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// History returns the named event's retained samples, oldest first, or nil
// if the event has never fired.
func (e *Events) History(name string) []EventSample {
	e.mu.Lock()
	defer e.mu.Unlock()
	ev := e.m[name]
	if ev == nil {
		return nil
	}
	out := make([]EventSample, 0, ev.n)
	start := ev.pos - ev.n
	for i := 0; i < ev.n; i++ {
		out = append(out, ev.ring[(start+i+EventHistory)%EventHistory])
	}
	return out
}

// Reset forgets the named events (all of them when names is empty) and
// reports how many timelines were cleared.
func (e *Events) Reset(names ...string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(names) == 0 {
		n := len(e.m)
		e.m = map[string]*event{}
		return n
	}
	n := 0
	for _, name := range names {
		if _, ok := e.m[name]; ok {
			delete(e.m, name)
			n++
		}
	}
	return n
}
