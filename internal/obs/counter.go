package obs

import "sync/atomic"

// CounterStripes is the stripe count of a Counter. 16 padded stripes keep
// writers from distinct connections/shards off each other's cache lines
// while a read (Load) stays a 16-word sum.
const CounterStripes = 16

// paddedUint64 occupies a full cache line (64B on every platform this repo
// targets, 128B-safe would double the footprint for no measured gain), so
// neighboring stripes never false-share.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing, striped counter. Hot paths that
// already own a natural identity (a connection, an allocator shard) pick a
// Stripe once and add through it with no further coordination; everything
// else can use Add, which targets stripe 0 and is exactly an atomic add.
type Counter struct {
	stripes [CounterStripes]paddedUint64
}

// Stripe is a stable stripe assignment for one logical writer.
type Stripe struct{ i uint32 }

// stripeSeq round-robins stripe assignments across writers.
var stripeSeq atomic.Uint32

// NextStripe returns the next round-robin stripe assignment. Writers that
// keep one (per connection, per shard) spread their adds across cache lines.
func NextStripe() Stripe {
	return Stripe{(stripeSeq.Add(1) - 1) % CounterStripes}
}

// Add increments the counter by n on stripe 0.
func (c *Counter) Add(n uint64) { c.stripes[0].v.Add(n) }

// AddStripe increments the counter by n on the caller's stripe.
func (c *Counter) AddStripe(s Stripe, n uint64) { c.stripes[s.i].v.Add(n) }

// Load sums the stripes. Concurrent adds may or may not be included; the
// result never goes backwards between calls observing the same adds.
func (c *Counter) Load() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Gauge is a settable instantaneous value. Gauges are updated on slow paths
// (cycle lengths, queue depths), so a single atomic word suffices.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
