package bench

import (
	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// Contended remote-free benchmark for the sharded/batched allocator paths.
//
// The workload is the prod-con shape (Fig. 5d): every block is allocated by
// a producer and freed by a different thread, so every deallocation is
// remote. A deliberately small thread cache forces the consumers through
// the global path on every few frees, concentrating traffic on the
// superblock anchors and the partial-list heads — exactly the shared
// metadata that sharding (independent head words per handle home shard) and
// batching (one anchor CAS per superblock group instead of per block)
// relieve. Comparing ContendedFree(1, true, ...) against
// ContendedFree(0, false, ...) at 8+ threads isolates the win.

// contendedCacheCap keeps thread caches small so drains (and hence global
// list traffic) are frequent; the default cap of a whole superblock's worth
// of blocks would hide the contention this benchmark exists to measure.
const contendedCacheCap = 64

// ContendedConfig builds the ralloc configuration under test: shards as
// given (0 = the GOMAXPROCS-based default) and batched remote frees unless
// unbatched is set.
func ContendedConfig(size uint64, shards int, unbatched bool, pcfg pmem.Config) ralloc.Config {
	return ralloc.Config{
		SBRegion:      size,
		Shards:        shards,
		UnbatchedFree: unbatched,
		CacheCap:      contendedCacheCap,
		Pmem:          pcfg,
	}
}

// ContendedFreeFactory is the bench Factory for a contended-free ralloc
// configuration.
func ContendedFreeFactory(shards int, unbatched bool, pcfg pmem.Config) Factory {
	return func(size uint64) (alloc.Allocator, error) {
		h, _, err := ralloc.Open("", ContendedConfig(size, shards, unbatched, pcfg))
		if err != nil {
			return nil, err
		}
		return h.AsAllocator(), nil
	}
}

// ContendedFree runs pairs producer/consumer pairs (2·pairs threads) moving
// totalObjs 64-byte objects through M&S queues on a ralloc heap with the
// given shard count and free-batching mode.
func ContendedFree(shards int, unbatched bool, pairs, totalObjs int) (Result, error) {
	a, err := ContendedFreeFactory(shards, unbatched, pmem.Config{})(512 << 20)
	if err != nil {
		return Result{}, err
	}
	res := Prodcon(a, pairs, totalObjs, 64)
	if err := a.Close(); err != nil {
		return Result{}, err
	}
	return res, nil
}
