// Package bench implements the paper's evaluation workloads (§6.2–§6.4) and
// the thread-sweep harness that regenerates each figure's data series.
//
//   - Threadtest (Fig. 5a): per-thread batched alloc/free of 64 B objects.
//   - Shbench (Fig. 5b): allocator stress test, sizes 64–400 B skewed small.
//   - Larson (Fig. 5c): server-style "bleeding" with cross-thread frees and
//     thread handoff.
//   - Prod-con (Fig. 5d): producer/consumer pairs over M&S queues.
//   - Vacation (Fig. 5e) and Memcached+YCSB (Fig. 5f) via their packages.
//   - Recovery GC time (Fig. 6) via GCStack/GCTree.
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/dstruct"
	"repro/internal/jemal"
	"repro/internal/lrmalloc"
	"repro/internal/makalu"
	"repro/internal/pmdk"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

// Factory builds a fresh allocator over a heap of roughly the given size.
type Factory func(heapSize uint64) (alloc.Allocator, error)

// AllocNames lists the evaluated allocators in the paper's order.
var AllocNames = []string{"ralloc", "makalu", "pmdk", "lrmalloc", "jemalloc"}

// PersistentAllocNames lists only the persistent ones (used by Vacation,
// which the paper runs with persistent allocators only).
var PersistentAllocNames = []string{"ralloc", "makalu", "pmdk"}

// Factories returns a factory per allocator. pcfg sets the simulated-NVM
// cost model (flush/fence latency); persistent allocators feel it, the
// transient ones never flush.
func Factories(pcfg pmem.Config) map[string]Factory {
	return map[string]Factory{
		"ralloc": func(size uint64) (alloc.Allocator, error) {
			h, _, err := ralloc.Open("", ralloc.Config{SBRegion: size, Pmem: pcfg})
			if err != nil {
				return nil, err
			}
			return h.AsAllocator(), nil
		},
		"lrmalloc": func(size uint64) (alloc.Allocator, error) {
			return lrmalloc.New(ralloc.Config{SBRegion: size, Pmem: pcfg})
		},
		"makalu": func(size uint64) (alloc.Allocator, error) {
			return makalu.New(makalu.Config{HeapSize: size, Pmem: pcfg})
		},
		"pmdk": func(size uint64) (alloc.Allocator, error) {
			return pmdk.New(pmdk.Config{HeapSize: size, Pmem: pcfg})
		},
		"jemalloc": func(size uint64) (alloc.Allocator, error) {
			return jemal.New(jemal.Config{HeapSize: size, Pmem: pcfg})
		},
	}
}

// DefaultNVM is the cost model used by the figure benchmarks: a modest
// per-line write-back latency approximating Optane clwb+queue costs. The
// shape of every figure comes from flush/fence *counts* and synchronization;
// this constant only sets the scale.
var DefaultNVM = pmem.Config{FlushLatency: 120 * time.Nanosecond, FenceLatency: 30 * time.Nanosecond}

// Result is one benchmark sample. P50us/P99us are per-command server-side
// latency percentiles (microseconds) and are populated only by benchmarks
// that run through internal/server, where every command execution feeds a
// latency histogram; library-mode benchmarks leave them zero.
type Result struct {
	Allocator string
	Threads   int
	Ops       uint64
	Elapsed   time.Duration
	P50us     float64
	P99us     float64
	// Saves counts background online checkpoints completed during the
	// operation phase (MemcachedNetSave only; zero elsewhere).
	Saves uint64
}

// Seconds returns the elapsed wall time in seconds (the paper's unit for
// Figures 5a, 5b, 5d, 5e).
func (r Result) Seconds() float64 { return r.Elapsed.Seconds() }

// Mops returns throughput in million operations per second (Fig. 5c's
// unit).
func (r Result) Mops() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// Kops returns throughput in thousand operations per second (Fig. 5f's
// unit).
func (r Result) Kops() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e3
}

// runThreads spawns t goroutines pinned to OS threads (mirroring the
// paper's per-core pinning) and times body across all of them.
func runThreads(t int, body func(id int)) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < t; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			body(id)
		}(id)
	}
	wg.Wait()
	return time.Since(start)
}

// ----------------------------------------------------------------------
// Threadtest (Fig. 5a). Hoard's classic: in every iteration each thread
// allocates a batch of 64-byte objects and then frees them, with no sharing
// between threads.

// Threadtest runs iters iterations of alloc/free batches of objsPerIter
// objects of the given size on each of t threads.
func Threadtest(a alloc.Allocator, t, iters, objsPerIter int, size uint64) Result {
	ops := uint64(0)
	elapsed := runThreads(t, func(id int) {
		hd := a.NewHandle()
		objs := make([]uint64, objsPerIter)
		for it := 0; it < iters; it++ {
			for i := range objs {
				objs[i] = hd.Malloc(size)
				if objs[i] == 0 {
					panic(fmt.Sprintf("%s: threadtest OOM", a.Name()))
				}
			}
			for i := range objs {
				hd.Free(objs[i])
			}
		}
	})
	ops = uint64(t) * uint64(iters) * uint64(objsPerIter) * 2
	return Result{Allocator: a.Name(), Threads: t, Ops: ops, Elapsed: elapsed}
}

// ----------------------------------------------------------------------
// Shbench (Fig. 5b). MicroQuill's stress test: many objects of sizes 64–400
// bytes with smaller objects allocated more frequently, freed with a lag
// through a sliding window.

// ShbenchSizes draws a size in [64,400] skewed toward small values.
func ShbenchSizes(rng *rand.Rand) uint64 {
	r := rng.Float64()
	return 64 + uint64(336*r*r)
}

// Shbench runs iters window steps per thread.
func Shbench(a alloc.Allocator, t, iters int) Result {
	const window = 256
	const batch = 16
	elapsed := runThreads(t, func(id int) {
		hd := a.NewHandle()
		rng := rand.New(rand.NewSource(int64(id) + 1))
		ring := make([]uint64, 0, window+batch)
		for it := 0; it < iters; it++ {
			for i := 0; i < batch; i++ {
				off := hd.Malloc(ShbenchSizes(rng))
				if off == 0 {
					panic(fmt.Sprintf("%s: shbench OOM", a.Name()))
				}
				ring = append(ring, off)
			}
			if len(ring) >= window {
				for _, off := range ring[:batch] {
					hd.Free(off)
				}
				ring = append(ring[:0], ring[batch:]...)
			}
		}
		for _, off := range ring {
			hd.Free(off)
		}
	})
	ops := uint64(t) * uint64(iters) * 2 * 16
	return Result{Allocator: a.Name(), Threads: t, Ops: ops, Elapsed: elapsed}
}

// ----------------------------------------------------------------------
// Larson (Fig. 5c). Larson & Krishnan's server simulation: each thread
// keeps a window of live objects, randomly replacing them; periodically the
// window "bleeds" to a fresh thread, so objects allocated by one thread are
// freed by another. Reported in ops/sec.

// LarsonConfig parameterizes the benchmark.
type LarsonConfig struct {
	Live     int    // live objects per thread (paper: 1000)
	MinSize  uint64 // paper: 64
	MaxSize  uint64 // paper: 400 (in-text variant: 2048)
	Handoff  int    // ops between thread handoffs (paper: 10^4 iterations)
	OpsPerTh int    // total replacements per thread chain
}

// DefaultLarson mirrors the paper's configuration at test scale.
func DefaultLarson() LarsonConfig {
	return LarsonConfig{Live: 1000, MinSize: 64, MaxSize: 400, Handoff: 10000, OpsPerTh: 50000}
}

// flusher is implemented by handles with thread caches: Flush models the
// cache destructor a cleanly exiting thread runs.
type flusher interface{ Flush() }

// Larson runs t thread chains.
func Larson(a alloc.Allocator, t int, cfg LarsonConfig) Result {
	elapsed := runThreads(t, func(id int) {
		slots := make([]uint64, cfg.Live)
		rng := rand.New(rand.NewSource(int64(id) + 42))
		remaining := cfg.OpsPerTh
		for remaining > 0 {
			// One "thread life": run Handoff ops, then hand the
			// window to a fresh handle (the bleeding pattern —
			// the old thread's objects are freed by the new one).
			hd := a.NewHandle()
			life := cfg.Handoff
			if life > remaining {
				life = remaining
			}
			for i := 0; i < life; i++ {
				k := rng.Intn(cfg.Live)
				if slots[k] != 0 {
					hd.Free(slots[k])
				}
				size := cfg.MinSize + uint64(rng.Int63n(int64(cfg.MaxSize-cfg.MinSize+1)))
				slots[k] = hd.Malloc(size)
				if slots[k] == 0 {
					panic(fmt.Sprintf("%s: larson OOM", a.Name()))
				}
			}
			// The exiting thread's cache destructor returns its
			// cached blocks; without this, every handoff strands a
			// cache and memory ratchets upward.
			if f, ok := hd.(flusher); ok {
				f.Flush()
			}
			remaining -= life
		}
		// Final cleanup by the last handle in the chain.
		hd := a.NewHandle()
		for _, off := range slots {
			if off != 0 {
				hd.Free(off)
			}
		}
	})
	ops := uint64(t) * uint64(cfg.OpsPerTh)
	return Result{Allocator: a.Name(), Threads: t, Ops: ops, Elapsed: elapsed}
}

// ----------------------------------------------------------------------
// Prod-con (Fig. 5d). t/2 producer/consumer pairs, each with a lock-free
// M&S queue: the producer allocates objects and enqueues pointers, the
// consumer dequeues and deallocates. Total objects is fixed, so per-pair
// load shrinks as threads grow (10^7·2/t in the paper).

// Prodcon runs pairs pairs moving totalObjs objects in aggregate.
func Prodcon(a alloc.Allocator, pairs int, totalObjs int, objSize uint64) Result {
	perPair := totalObjs / pairs
	if perPair == 0 {
		perPair = 1
	}
	qs := make([]*dstruct.Queue, pairs)
	setup := a.NewHandle()
	for i := range qs {
		qs[i], _ = dstruct.NewQueue(a, setup)
	}
	elapsed := runThreads(pairs*2, func(id int) {
		p := id / 2
		hd := a.NewHandle()
		if id%2 == 0 { // producer
			for i := 0; i < perPair; i++ {
				obj := hd.Malloc(objSize)
				if obj == 0 {
					panic(fmt.Sprintf("%s: prodcon OOM", a.Name()))
				}
				for !qs[p].Enqueue(hd, obj) {
				}
			}
		} else { // consumer
			g := qs[p].Guard(hd)
			for n := 0; n < perPair; {
				if obj, ok := qs[p].Dequeue(g); ok {
					hd.Free(obj)
					n++
				}
			}
		}
	})
	ops := uint64(pairs) * uint64(perPair) * 2
	return Result{Allocator: a.Name(), Threads: pairs * 2, Ops: ops, Elapsed: elapsed}
}

// ----------------------------------------------------------------------
// Sweep harness.

// Point is one (threads, result) sample of a series.
type Point struct {
	Threads int
	Result  Result
}

// Series is one allocator's curve in a figure.
type Series struct {
	Allocator string
	Points    []Point
}

// Sweep runs fn once per thread count with a fresh allocator each time.
func Sweep(factory Factory, name string, heapSize uint64, threads []int,
	fn func(a alloc.Allocator, t int) Result) (Series, error) {
	s := Series{Allocator: name}
	for _, t := range threads {
		a, err := factory(heapSize)
		if err != nil {
			return s, err
		}
		res := fn(a, t)
		if err := a.Close(); err != nil {
			return s, err
		}
		s.Points = append(s.Points, Point{Threads: t, Result: res})
	}
	return s, nil
}

// DefaultThreads is the sweep grid, scaled to the host.
func DefaultThreads() []int {
	max := runtime.GOMAXPROCS(0)
	grid := []int{1, 2, 4, 8, 16, 24, 32, 48, 64}
	var out []int
	for _, t := range grid {
		if t <= max {
			out = append(out, t)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
