package bench

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/kvstore"
	"repro/internal/server"
	"repro/internal/vacation"
	"repro/internal/ycsb"
)

// ----------------------------------------------------------------------
// Vacation (Fig. 5e).

// VacationConfig parameterizes the application run.
type VacationConfig struct {
	Vac         vacation.Config
	TxPerThread int
	CancelFrac  float64 // fraction of transactions that cancel (adds frees)
}

// DefaultVacation mirrors the paper at test scale: 16384 relations, 5
// queries per transaction, 90% coverage.
func DefaultVacation() VacationConfig {
	return VacationConfig{
		Vac:         vacation.Config{Relations: 16384, QueriesPerTx: 5, QueryRange: 0.90},
		TxPerThread: 20000,
		CancelFrac:  0.25,
	}
}

// Vacation populates the database and runs cfg.TxPerThread transactions on
// each of t threads. Time is reported for the transaction phase only (the
// paper's measured region).
func Vacation(a alloc.Allocator, t int, cfg VacationConfig) Result {
	setup := a.NewHandle()
	m := vacation.New(a, setup, cfg.Vac)
	elapsed := runThreads(t, func(id int) {
		hd := a.NewHandle()
		c := m.NewClient(hd, int64(id)+7)
		cancelEvery := 0
		if cfg.CancelFrac > 0 {
			cancelEvery = int(1 / cfg.CancelFrac)
		}
		for i := 0; i < cfg.TxPerThread; i++ {
			if cancelEvery > 0 && i%cancelEvery == cancelEvery-1 && c.CancelOldest() {
				continue
			}
			if !c.MakeReservation(uint64(id*cfg.TxPerThread+i) + 1) {
				panic(fmt.Sprintf("%s: vacation OOM", a.Name()))
			}
		}
	})
	return Result{Allocator: a.Name(), Threads: t, Ops: m.Transactions(), Elapsed: elapsed}
}

// ----------------------------------------------------------------------
// Memcached + YCSB (Fig. 5f).

// MemcachedConfig parameterizes the application run.
type MemcachedConfig struct {
	Workload ycsb.Workload
	OpsPerTh int
}

// DefaultMemcached mirrors the paper at test scale: workload A over 100 K
// records, 100 K operations total (split over threads by the caller).
func DefaultMemcached(records int) MemcachedConfig {
	return MemcachedConfig{Workload: ycsb.WorkloadA(records), OpsPerTh: 20000}
}

// loadRecords populates the store for a workload: flat strings, or — for a
// hash workload (Fields > 0) — one hash object per record with every field
// populated, so reads start warm.
func loadRecords(a alloc.Allocator, store *kvstore.Store, setup alloc.Handle, w ycsb.Workload) {
	loader := ycsb.NewGenerator(w, 999)
	var buf []byte
	for i := 0; i < w.Records; i++ {
		if w.Fields > 0 {
			key := []byte(ycsb.KeyAt(i))
			for f := 0; f < w.Fields; f++ {
				buf = loader.Value(buf)
				if _, err := store.HSet(setup, key, []byte(ycsb.FieldAt(f)), buf); err != nil {
					panic(fmt.Sprintf("%s: memcached hash load: %v", a.Name(), err))
				}
			}
			continue
		}
		buf = loader.Value(buf)
		if !store.SetBytes(setup, []byte(ycsb.KeyAt(i)), buf) {
			panic(fmt.Sprintf("%s: memcached load OOM", a.Name()))
		}
	}
}

// Memcached loads the record set and runs cfg.OpsPerTh YCSB operations per
// thread; throughput covers the operation phase only.
func Memcached(a alloc.Allocator, t int, cfg MemcachedConfig) Result {
	setup := a.NewHandle()
	store, _ := kvstore.Open(a, setup, cfg.Workload.Records)
	loadRecords(a, store, setup, cfg.Workload)
	elapsed := runThreads(t, func(id int) {
		hd := a.NewHandle()
		gen := ycsb.NewGenerator(cfg.Workload, int64(id)+1)
		var vbuf []byte
		for i := 0; i < cfg.OpsPerTh; i++ {
			// Library mode has no server to run the active expiry cycle, so
			// TTL workloads interleave reclamation with the traffic itself —
			// the expire/reclaim half of the cache lifecycle stays on the
			// measured path.
			if cfg.Workload.TTLFrac > 0 && i%256 == 255 {
				store.ReclaimExpired(hd, 32)
			}
			op := gen.Next()
			switch op.Kind {
			case ycsb.Read:
				if op.Field != "" {
					if _, _, err := store.HGet([]byte(op.Key), []byte(op.Field)); err != nil {
						panic(fmt.Sprintf("%s: memcached HGet: %v", a.Name(), err))
					}
				} else {
					store.GetBytes([]byte(op.Key))
				}
			case ycsb.Update:
				vbuf = gen.Value(vbuf)
				if op.Field != "" {
					if _, err := store.HSet(hd, []byte(op.Key), []byte(op.Field), vbuf); err != nil {
						panic(fmt.Sprintf("%s: memcached HSet: %v", a.Name(), err))
					}
					break
				}
				ok := true
				if op.TTLMillis > 0 {
					ok = store.SetBytesExpire(hd, []byte(op.Key), vbuf, store.Now()+op.TTLMillis)
				} else {
					ok = store.SetBytes(hd, []byte(op.Key), vbuf)
				}
				if !ok {
					panic(fmt.Sprintf("%s: memcached OOM", a.Name()))
				}
			}
		}
	})
	ops := uint64(t) * uint64(cfg.OpsPerTh)
	return Result{Allocator: a.Name(), Threads: t, Ops: ops, Elapsed: elapsed}
}

// netSockSeq disambiguates concurrent network benchmarks' socket paths.
var netSockSeq atomic.Uint64

// MemcachedNet runs the same YCSB workload as Memcached, but over sockets:
// the store is served by internal/server on a unix socket and each thread is
// a pipelining RESP client. This restores exactly the layer the paper
// removed, so the gap to the library-mode number is the cost of the network
// stack and protocol. pipeline is the number of commands in flight per
// client batch (1 = strict request/response).
func MemcachedNet(a alloc.Allocator, t int, cfg MemcachedConfig, pipeline int) Result {
	return memcachedNet(a, t, cfg, pipeline, false)
}

// MemcachedNetSave is MemcachedNet with a continuous background online SAVE:
// while the YCSB traffic runs, a checkpoint loop snapshots the whole region
// to a temp file over and over (write barrier + cut-over fence per cycle).
// The returned P99us is therefore the p99 command latency *under checkpoint
// pressure* — the number the online snapshot exists to keep close to the
// steady-state p99, where the quiesced path would stretch it by whole
// stop-the-world image writes.
func MemcachedNetSave(a alloc.Allocator, t int, cfg MemcachedConfig, pipeline int) Result {
	return memcachedNet(a, t, cfg, pipeline, true)
}

func memcachedNet(a alloc.Allocator, t int, cfg MemcachedConfig, pipeline int, bgSave bool) Result {
	if pipeline < 1 {
		pipeline = 1
	}
	setup := a.NewHandle()
	store, _ := kvstore.Open(a, setup, cfg.Workload.Records)
	loadRecords(a, store, setup, cfg.Workload)

	sock := filepath.Join(os.TempDir(),
		fmt.Sprintf("ralloc-net-%d-%d.sock", os.Getpid(), netSockSeq.Add(1)))
	os.Remove(sock)
	l, err := net.Listen("unix", sock)
	if err != nil {
		panic(fmt.Sprintf("%s: memcached net listen: %v", a.Name(), err))
	}
	srvCfg := server.Config{}
	if cfg.Workload.TTLFrac > 0 {
		// TTL workloads run the real active expiry cycle so the measured
		// traffic includes concurrent expired-record reclamation.
		srvCfg.ActiveExpiryInterval = 50 * time.Millisecond
		srvCfg.ActiveExpirySample = 128
	}
	var savePath string
	if bgSave {
		savePath = sock + ".img"
		srvCfg.CheckpointOnline = func(fence func(cut func() error) error) (server.CheckpointStats, error) {
			st, err := a.Region().SaveFileOnline(savePath, fence)
			return server.CheckpointStats{
				Lines:         st.Lines,
				Recopied:      st.Recopied,
				FenceRecopied: st.FenceRecopied,
				Rounds:        st.Rounds,
			}, err
		}
	}
	srv := server.New(a, store, srvCfg)
	go srv.Serve(l)
	defer func() {
		srv.Shutdown(5 * time.Second)
		os.Remove(sock)
	}()

	var saves atomic.Uint64
	if bgSave {
		stopSave := make(chan struct{})
		var saveWG sync.WaitGroup
		saveWG.Add(1)
		go func() {
			defer saveWG.Done()
			for {
				select {
				case <-stopSave:
					return
				default:
				}
				if err := srv.Save(); err != nil {
					panic(fmt.Sprintf("%s: background SAVE: %v", a.Name(), err))
				}
				saves.Add(1)
			}
		}()
		defer func() {
			close(stopSave)
			saveWG.Wait()
			os.Remove(savePath)
			os.Remove(savePath + ".tmp")
		}()
	}

	elapsed := runThreads(t, func(id int) {
		c, err := server.Dial("unix", sock)
		if err != nil {
			panic(fmt.Sprintf("%s: memcached net dial: %v", a.Name(), err))
		}
		defer c.Close()
		gen := ycsb.NewGenerator(cfg.Workload, int64(id)+1)
		var vbuf []byte
		for done := 0; done < cfg.OpsPerTh; {
			batch := pipeline
			if rest := cfg.OpsPerTh - done; batch > rest {
				batch = rest
			}
			for i := 0; i < batch; i++ {
				op := gen.Next()
				switch op.Kind {
				case ycsb.Read:
					if op.Field != "" {
						err = c.SendBytes([]byte("HGET"), []byte(op.Key), []byte(op.Field))
					} else {
						err = c.SendBytes([]byte("GET"), []byte(op.Key))
					}
				case ycsb.Update:
					vbuf = gen.Value(vbuf)
					switch {
					case op.Field != "":
						err = c.SendBytes([]byte("HSET"), []byte(op.Key), []byte(op.Field), vbuf)
					case op.TTLMillis > 0:
						err = c.SendBytes([]byte("PSETEX"), []byte(op.Key),
							strconv.AppendInt(nil, op.TTLMillis, 10), vbuf)
					default:
						err = c.SendBytes([]byte("SET"), []byte(op.Key), vbuf)
					}
				}
				if err != nil {
					panic(fmt.Sprintf("%s: memcached net send: %v", a.Name(), err))
				}
			}
			if err := c.Flush(); err != nil {
				panic(fmt.Sprintf("%s: memcached net flush: %v", a.Name(), err))
			}
			for i := 0; i < batch; i++ {
				rp, err := c.Recv()
				if err != nil {
					panic(fmt.Sprintf("%s: memcached net recv: %v", a.Name(), err))
				}
				if err := rp.Err(); err != nil {
					panic(fmt.Sprintf("%s: memcached net reply: %v", a.Name(), err))
				}
			}
			done += batch
		}
	})
	ops := uint64(t) * uint64(cfg.OpsPerTh)
	res := Result{Allocator: a.Name(), Threads: t, Ops: ops, Elapsed: elapsed, Saves: saves.Load()}
	// Server-side command latency percentiles from the merged per-command
	// histograms: what the server spent executing each command, free of
	// client-side pipelining slack.
	if snap := srv.LatencySnapshot(); snap.Count > 0 {
		res.P50us = snap.Quantile(0.50) / 1e3
		res.P99us = snap.Quantile(0.99) / 1e3
	}
	return res
}

// MemcachedNetReplicas measures read fan-out across a replication group: one
// primary plus `replicas` read-only replicas, each on its own allocator and
// socket. Every replica starts empty with the primary's stream ID at offset
// zero and partial-resyncs the entire record load through the feed (the
// primary's backlog is sized to retain offset 0), so the state each replica
// serves is the replicated one — applied through its own dispatch pipeline —
// not a shared heap. The record load itself goes through a client connection
// for the same reason: direct store writes would bypass the feed. Threads
// then run the read-only traffic round-robin across the replicas; the
// primary serves nothing but the feed. Reported latency percentiles come
// from the worst replica's server-side histograms.
func MemcachedNetReplicas(factory Factory, heapSize uint64, t int, cfg MemcachedConfig, pipeline, replicas int) (Result, error) {
	if pipeline < 1 {
		pipeline = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	backlog := 64 << 20 // must retain the whole load phase for offset-0 resyncs

	newNode := func(scfg server.Config) (alloc.Allocator, *server.Server, string, error) {
		a, err := factory(heapSize)
		if err != nil {
			return nil, nil, "", err
		}
		setup := a.NewHandle()
		store, _ := kvstore.Open(a, setup, cfg.Workload.Records)
		srv := server.New(a, store, scfg)
		sock := filepath.Join(os.TempDir(),
			fmt.Sprintf("ralloc-repl-%d-%d.sock", os.Getpid(), netSockSeq.Add(1)))
		os.Remove(sock)
		l, err := net.Listen("unix", sock)
		if err != nil {
			a.Close()
			return nil, nil, "", fmt.Errorf("replica bench listen: %w", err)
		}
		go srv.Serve(l)
		return a, srv, sock, nil
	}

	pa, psrv, psock, err := newNode(server.Config{ReplBacklogBytes: backlog})
	if err != nil {
		return Result{}, err
	}
	defer func() {
		psrv.Shutdown(5 * time.Second)
		pa.Close()
		os.Remove(psock)
	}()
	primaryID, _ := psrv.ReplMeta()

	var (
		rsocks      []string
		replicaSrvs []*server.Server
	)
	for i := 0; i < replicas; i++ {
		ra, rsrv, rsock, err := newNode(server.Config{
			ReplBacklogBytes: backlog,
			ReplicaOf:        psock,
			ReplID:           primaryID,
		})
		if err != nil {
			return Result{}, err
		}
		defer func() {
			rsrv.Shutdown(5 * time.Second)
			ra.Close()
			os.Remove(rsock)
		}()
		rsocks = append(rsocks, rsock)
		replicaSrvs = append(replicaSrvs, rsrv)
	}

	// Load through the wire so every record rides the feed to the replicas.
	lc, err := server.Dial("unix", psock)
	if err != nil {
		return Result{}, fmt.Errorf("replica bench dial primary: %w", err)
	}
	defer lc.Close()
	loader := ycsb.NewGenerator(cfg.Workload, 999)
	var buf []byte
	for i := 0; i < cfg.Workload.Records; {
		batch := pipeline
		if rest := cfg.Workload.Records - i; batch > rest {
			batch = rest
		}
		for j := 0; j < batch; j++ {
			buf = loader.Value(buf)
			if err := lc.SendBytes([]byte("SET"), []byte(ycsb.KeyAt(i+j)), buf); err != nil {
				return Result{}, fmt.Errorf("replica bench load: %w", err)
			}
		}
		if err := lc.Flush(); err != nil {
			return Result{}, fmt.Errorf("replica bench load flush: %w", err)
		}
		for j := 0; j < batch; j++ {
			if rp, err := lc.Recv(); err != nil || rp.Err() != nil {
				return Result{}, fmt.Errorf("replica bench load reply: %v / %v", err, rp.Err())
			}
		}
		i += batch
	}
	if n, err := lc.Wait(replicas, 60*time.Second); err != nil || n < int64(replicas) {
		return Result{}, fmt.Errorf("replica bench: %d/%d replicas caught up (%v)", n, replicas, err)
	}

	elapsed := runThreads(t, func(id int) {
		c, err := server.Dial("unix", rsocks[id%len(rsocks)])
		if err != nil {
			panic(fmt.Sprintf("replica bench dial: %v", err))
		}
		defer c.Close()
		gen := ycsb.NewGenerator(cfg.Workload, int64(id)+1)
		for done := 0; done < cfg.OpsPerTh; {
			batch := pipeline
			if rest := cfg.OpsPerTh - done; batch > rest {
				batch = rest
			}
			for i := 0; i < batch; i++ {
				op := gen.Next()
				if err := c.SendBytes([]byte("GET"), []byte(op.Key)); err != nil {
					panic(fmt.Sprintf("replica bench send: %v", err))
				}
			}
			if err := c.Flush(); err != nil {
				panic(fmt.Sprintf("replica bench flush: %v", err))
			}
			for i := 0; i < batch; i++ {
				rp, err := c.Recv()
				if err != nil {
					panic(fmt.Sprintf("replica bench recv: %v", err))
				}
				if err := rp.Err(); err != nil {
					panic(fmt.Sprintf("replica bench reply: %v", err))
				}
			}
			done += batch
		}
	})

	res := Result{Allocator: "ralloc", Threads: t, Ops: uint64(t) * uint64(cfg.OpsPerTh), Elapsed: elapsed}
	for _, rsrv := range replicaSrvs {
		if snap := rsrv.LatencySnapshot(); snap.Count > 0 {
			if p := snap.Quantile(0.99) / 1e3; p > res.P99us {
				res.P99us = p
				res.P50us = snap.Quantile(0.50) / 1e3
			}
		}
	}
	return res, nil
}
