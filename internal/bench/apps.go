package bench

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/kvstore"
	"repro/internal/vacation"
	"repro/internal/ycsb"
)

// ----------------------------------------------------------------------
// Vacation (Fig. 5e).

// VacationConfig parameterizes the application run.
type VacationConfig struct {
	Vac         vacation.Config
	TxPerThread int
	CancelFrac  float64 // fraction of transactions that cancel (adds frees)
}

// DefaultVacation mirrors the paper at test scale: 16384 relations, 5
// queries per transaction, 90% coverage.
func DefaultVacation() VacationConfig {
	return VacationConfig{
		Vac:         vacation.Config{Relations: 16384, QueriesPerTx: 5, QueryRange: 0.90},
		TxPerThread: 20000,
		CancelFrac:  0.25,
	}
}

// Vacation populates the database and runs cfg.TxPerThread transactions on
// each of t threads. Time is reported for the transaction phase only (the
// paper's measured region).
func Vacation(a alloc.Allocator, t int, cfg VacationConfig) Result {
	setup := a.NewHandle()
	m := vacation.New(a, setup, cfg.Vac)
	elapsed := runThreads(t, func(id int) {
		hd := a.NewHandle()
		c := m.NewClient(hd, int64(id)+7)
		cancelEvery := 0
		if cfg.CancelFrac > 0 {
			cancelEvery = int(1 / cfg.CancelFrac)
		}
		for i := 0; i < cfg.TxPerThread; i++ {
			if cancelEvery > 0 && i%cancelEvery == cancelEvery-1 && c.CancelOldest() {
				continue
			}
			if !c.MakeReservation(uint64(id*cfg.TxPerThread+i) + 1) {
				panic(fmt.Sprintf("%s: vacation OOM", a.Name()))
			}
		}
	})
	return Result{Allocator: a.Name(), Threads: t, Ops: m.Transactions(), Elapsed: elapsed}
}

// ----------------------------------------------------------------------
// Memcached + YCSB (Fig. 5f).

// MemcachedConfig parameterizes the application run.
type MemcachedConfig struct {
	Workload ycsb.Workload
	OpsPerTh int
}

// DefaultMemcached mirrors the paper at test scale: workload A over 100 K
// records, 100 K operations total (split over threads by the caller).
func DefaultMemcached(records int) MemcachedConfig {
	return MemcachedConfig{Workload: ycsb.WorkloadA(records), OpsPerTh: 20000}
}

// Memcached loads the record set and runs cfg.OpsPerTh YCSB operations per
// thread; throughput covers the operation phase only.
func Memcached(a alloc.Allocator, t int, cfg MemcachedConfig) Result {
	setup := a.NewHandle()
	store, _ := kvstore.Open(a, setup, cfg.Workload.Records)
	loader := ycsb.NewGenerator(cfg.Workload, 999)
	var buf []byte
	for i := 0; i < cfg.Workload.Records; i++ {
		buf = loader.Value(buf)
		if !store.SetBytes(setup, []byte(ycsb.KeyAt(i)), buf) {
			panic(fmt.Sprintf("%s: memcached load OOM", a.Name()))
		}
	}
	elapsed := runThreads(t, func(id int) {
		hd := a.NewHandle()
		gen := ycsb.NewGenerator(cfg.Workload, int64(id)+1)
		var vbuf []byte
		for i := 0; i < cfg.OpsPerTh; i++ {
			op := gen.Next()
			switch op.Kind {
			case ycsb.Read:
				store.GetBytes([]byte(op.Key))
			case ycsb.Update:
				vbuf = gen.Value(vbuf)
				if !store.SetBytes(hd, []byte(op.Key), vbuf) {
					panic(fmt.Sprintf("%s: memcached OOM", a.Name()))
				}
			}
		}
	})
	ops := uint64(t) * uint64(cfg.OpsPerTh)
	return Result{Allocator: a.Name(), Threads: t, Ops: ops, Elapsed: elapsed}
}
