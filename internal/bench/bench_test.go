package bench

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/ycsb"
)

// Small-scale smoke runs of every figure's workload against every
// allocator: the harness itself must be correct before its numbers mean
// anything.

func TestThreadtestAllAllocators(t *testing.T) {
	for name, f := range Factories(pmem.Config{}) {
		a, err := f(64 << 20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := Threadtest(a, 2, 5, 1000, 64)
		if res.Ops != 2*5*1000*2 {
			t.Fatalf("%s: ops = %d", name, res.Ops)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: no elapsed time", name)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}

func TestShbenchAllAllocators(t *testing.T) {
	for name, f := range Factories(pmem.Config{}) {
		a, err := f(64 << 20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := Shbench(a, 2, 200)
		if res.Elapsed <= 0 {
			t.Fatalf("%s: no elapsed time", name)
		}
		a.Close()
	}
}

func TestShbenchSizeDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		s := ShbenchSizes(rng)
		if s < 64 || s > 400 {
			t.Fatalf("size %d out of [64,400]", s)
		}
		if s < 150 {
			small++
		} else if s > 300 {
			large++
		}
	}
	if small <= large {
		t.Fatalf("sizes not skewed small: %d small vs %d large", small, large)
	}
}

func TestLarsonAllAllocators(t *testing.T) {
	cfg := LarsonConfig{Live: 100, MinSize: 64, MaxSize: 400, Handoff: 500, OpsPerTh: 2000}
	for name, f := range Factories(pmem.Config{}) {
		a, err := f(64 << 20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := Larson(a, 2, cfg)
		if res.Ops != 2*2000 {
			t.Fatalf("%s: ops = %d", name, res.Ops)
		}
		a.Close()
	}
}

func TestProdconAllAllocators(t *testing.T) {
	for name, f := range Factories(pmem.Config{}) {
		a, err := f(64 << 20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := Prodcon(a, 2, 4000, 64)
		if res.Ops == 0 {
			t.Fatalf("%s: no ops", name)
		}
		a.Close()
	}
}

func TestVacationPersistentAllocators(t *testing.T) {
	cfg := VacationConfig{TxPerThread: 300, CancelFrac: 0.25}
	cfg.Vac.Relations = 512
	fs := Factories(pmem.Config{})
	for _, name := range PersistentAllocNames {
		a, err := fs[name](128 << 20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := Vacation(a, 2, cfg)
		if res.Ops == 0 {
			t.Fatalf("%s: no transactions", name)
		}
		a.Close()
	}
}

func TestMemcachedAllAllocators(t *testing.T) {
	cfg := MemcachedConfig{Workload: DefaultMemcached(2000).Workload, OpsPerTh: 1000}
	cfg.Workload.Records = 2000
	for name, f := range Factories(pmem.Config{}) {
		a, err := f(256 << 20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := Memcached(a, 2, cfg)
		if res.Ops != 2*1000 {
			t.Fatalf("%s: ops = %d", name, res.Ops)
		}
		a.Close()
	}
}

func TestMemcachedHashWorkload(t *testing.T) {
	// The hash-field workload must run in both library and network mode —
	// the object layer's measurable workload (ISSUE 5 satellite).
	w := ycsb.WorkloadH(200)
	w.Fields = 4
	cfg := MemcachedConfig{Workload: w, OpsPerTh: 500}
	f := Factories(pmem.Config{})["ralloc"]
	a, err := f(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res := Memcached(a, 2, cfg); res.Ops != 2*500 {
		t.Fatalf("library ops = %d", res.Ops)
	}
	a.Close()
	a, err = f(256 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res := MemcachedNet(a, 2, cfg, 8); res.Ops != 2*500 {
		t.Fatalf("net ops = %d", res.Ops)
	}
	a.Close()
}

func TestGCStackLinearity(t *testing.T) {
	small, err := GCStack(2000, true)
	if err != nil {
		t.Fatal(err)
	}
	big, err := GCStack(300000, true)
	if err != nil {
		t.Fatal(err)
	}
	if small.ReachableBlocks != 2001 || big.ReachableBlocks != 300001 {
		t.Fatalf("reachable = %d / %d", small.ReachableBlocks, big.ReachableBlocks)
	}
	// Linearity is asserted on deterministic work counters, not wall-clock
	// ratios (which flake under a fixed per-recovery sweep floor plus
	// scheduler noise). 150× the nodes must do ~150× the trace work: each
	// stack node's filter issues a constant number of visits.
	if small.TraceWork == 0 || big.TraceWork == 0 {
		t.Fatalf("trace work not recorded: %d / %d", small.TraceWork, big.TraceWork)
	}
	ratio := float64(big.TraceWork) / float64(small.TraceWork)
	if ratio < 100 || ratio > 225 {
		t.Fatalf("trace work not linear in nodes: %d / %d (ratio %.1f, want ~150)",
			big.TraceWork, small.TraceWork, ratio)
	}
	// The bigger heap sweeps at least as many superblock units.
	if big.SweepUnits < small.SweepUnits || big.SweepUnits == 0 {
		t.Fatalf("sweep units = %d small vs %d big", small.SweepUnits, big.SweepUnits)
	}
	// The timing decomposition must cover the total.
	for _, r := range []GCResult{small, big} {
		if r.TraceTime < 0 || r.SweepTime < 0 || r.TraceTime+r.SweepTime > r.GCTime {
			t.Fatalf("inconsistent GC time split: trace %v + sweep %v vs total %v",
				r.TraceTime, r.SweepTime, r.GCTime)
		}
	}
}

func TestGCTreeCounts(t *testing.T) {
	res, err := GCTree(3000)
	if err != nil {
		t.Fatal(err)
	}
	// 5 sentinels + 2 blocks per key.
	if res.ReachableBlocks != 5+2*3000 {
		t.Fatalf("reachable = %d, want %d", res.ReachableBlocks, 5+2*3000)
	}
}

func TestGCStackConservativeAlsoExact(t *testing.T) {
	// Stack node links are off-holders: conservative tracing should find
	// the same node set (modulo false positives, absent here).
	res, err := GCStack(2000, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReachableBlocks != 2001 {
		t.Fatalf("conservative reachable = %d, want 2001", res.ReachableBlocks)
	}
}

func TestSweep(t *testing.T) {
	fs := Factories(pmem.Config{})
	s, err := Sweep(fs["ralloc"], "ralloc", 64<<20, []int{1, 2}, func(a alloc.Allocator, tt int) Result {
		return Threadtest(a, tt, 2, 100, 64)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 || s.Points[0].Threads != 1 || s.Points[1].Threads != 2 {
		t.Fatalf("sweep points = %+v", s.Points)
	}
}

func TestContendedFreeConfigs(t *testing.T) {
	for _, cfg := range []struct {
		name      string
		shards    int
		unbatched bool
	}{
		{"single-shard-unbatched", 1, true},
		{"sharded-batched", 0, false},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			res, err := ContendedFree(cfg.shards, cfg.unbatched, 2, 8000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 2*8000 {
				t.Fatalf("ops = %d, want %d", res.Ops, 2*8000)
			}
		})
	}
}

// BenchmarkContendedFree compares the paper-faithful configuration (one
// global partial list per class, one anchor CAS per freed block) against the
// sharded+batched one on the all-remote-free prod-con workload. Run with
// -cpu 8 (or more) to reproduce the contended regime the sharding targets:
//
//	go test ./internal/bench -bench ContendedFree -cpu 8 -benchtime 3x
func BenchmarkContendedFree(b *testing.B) {
	pairs := runtime.GOMAXPROCS(0) / 2
	if pairs < 1 {
		pairs = 1
	}
	const totalObjs = 400000
	for _, cfg := range []struct {
		name      string
		shards    int
		unbatched bool
	}{
		{"shards=1/unbatched", 1, true},
		{"shards=1/batched", 1, false},
		{"shards=auto/batched", 0, false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ContendedFree(cfg.shards, cfg.unbatched, pairs, totalObjs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestDefaultThreadsMonotone(t *testing.T) {
	ts := DefaultThreads()
	if len(ts) == 0 {
		t.Fatal("empty grid")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("grid not increasing: %v", ts)
		}
	}
}
