package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dstruct"
	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/ralloc"
)

// Figure 6 measures the cost of Ralloc's recovery procedure: an application
// fills a structure, "crashes" (no close()), and the next run's recover()
// performs GC and metadata reconstruction. Recovery time is reported
// against the number of reachable blocks; the paper finds it linear, with a
// higher per-node constant for the tree (poorer locality).

// GCResult is one Fig. 6 sample. GCTime is total recovery wall time,
// decomposed into TraceTime (steps 4–5) and SweepTime (steps 3, 6–10);
// TraceWork and SweepUnits are the corresponding deterministic work
// counters, suitable for linearity assertions that wall-clock ratios are
// too noisy for.
type GCResult struct {
	Structure       string
	RequestedNodes  int
	ReachableBlocks uint64
	GCTime          time.Duration
	TraceTime       time.Duration
	SweepTime       time.Duration
	TraceWork       uint64
	SweepUnits      uint64
	Conservative    bool // tracing mode (filters off = ablation A1)
}

func gcResult(structure string, n int, conservative bool, stats ralloc.RecoveryStats) GCResult {
	return GCResult{
		Structure:       structure,
		RequestedNodes:  n,
		ReachableBlocks: stats.ReachableBlocks,
		GCTime:          stats.Duration,
		TraceTime:       stats.TraceTime,
		SweepTime:       stats.SweepTime,
		TraceWork:       stats.TraceWork,
		SweepUnits:      stats.SweepUnits,
		Conservative:    conservative,
	}
}

func gcHeap(nodes int) (*ralloc.Heap, error) {
	// ~64 B per stack node pair; size generously.
	size := uint64(nodes)*192 + (64 << 20)
	h, _, err := ralloc.Open("", ralloc.Config{
		SBRegion:    size,
		GrowthChunk: 16 << 20,
		Pmem:        pmem.Config{Mode: pmem.ModeCrashSim},
	})
	return h, err
}

// GCStackParallel is GCStack with the parallel recovery extension (§6.4
// future work): workers>1 runs RecoverParallel.
func GCStackParallel(n, workers int) (GCResult, error) {
	h, err := gcHeap(n)
	if err != nil {
		return GCResult{}, err
	}
	defer h.Close()
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, root := dstruct.NewStack(a, hd)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if !s.Push(hd, rng.Uint64()) {
			return GCResult{}, fmt.Errorf("stack push OOM at %d", i)
		}
	}
	h.SetRoot(0, root)
	if err := h.Region().Crash(); err != nil {
		return GCResult{}, err
	}
	h.GetRoot(0, s.Filter())
	stats, err := h.RecoverParallel(workers)
	if err != nil {
		return GCResult{}, err
	}
	return gcResult("stack", n, false, stats), nil
}

// GCStack measures recovery time for a Treiber stack of n key-value nodes
// (Fig. 6a). useFilter=false forces conservative tracing of the nodes (the
// head is always filtered: conservative GC cannot decode it at all).
func GCStack(n int, useFilter bool) (GCResult, error) {
	h, err := gcHeap(n)
	if err != nil {
		return GCResult{}, err
	}
	defer h.Close()
	a := h.AsAllocator()
	hd := a.NewHandle()
	s, root := dstruct.NewStack(a, hd)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if !s.Push(hd, rng.Uint64()) {
			return GCResult{}, fmt.Errorf("stack push OOM at %d", i)
		}
	}
	h.SetRoot(0, root)
	if err := h.Region().Crash(); err != nil {
		return GCResult{}, err
	}
	filter := s.Filter()
	if !useFilter {
		filter = conservativeStackHead(h)
	}
	h.GetRoot(0, filter)
	stats, err := h.Recover()
	if err != nil {
		return GCResult{}, err
	}
	return gcResult("stack", n, !useFilter, stats), nil
}

// conservativeStackHead decodes only the tagged head word, then lets the
// nodes trace conservatively (their links are off-holders).
func conservativeStackHead(h *ralloc.Heap) ralloc.Filter {
	r := h.Region()
	return func(g *ralloc.GC, off uint64) {
		if _, top := pptr.UnpackTag(r.Load(off)); top != 0 {
			g.Visit(top, nil)
		}
	}
}

// GCTree measures recovery time for a Natarajan–Mittal BST of n random
// key-value pairs (Fig. 6b). The tree's edges carry mark bits, so tracing
// always uses the tree filter.
func GCTree(n int) (GCResult, error) {
	h, err := gcHeap(2 * n)
	if err != nil {
		return GCResult{}, err
	}
	defer h.Close()
	a := h.AsAllocator()
	hd := a.NewHandle()
	tr, root := dstruct.NewTree(a, hd)
	g := tr.Guard(hd)
	rng := rand.New(rand.NewSource(2))
	inserted := 0
	for inserted < n {
		ins, ok := tr.Insert(g, rng.Uint64()%(dstruct.Inf0-1)+1, rng.Uint64())
		if !ok {
			return GCResult{}, fmt.Errorf("tree insert OOM at %d", inserted)
		}
		if ins {
			inserted++
		}
	}
	h.SetRoot(0, root)
	if err := h.Region().Crash(); err != nil {
		return GCResult{}, err
	}
	h.GetRoot(0, dstruct.TreeFilter(h.Region()))
	stats, err := h.Recover()
	if err != nil {
		return GCResult{}, err
	}
	return gcResult("nmbst", n, false, stats), nil
}
