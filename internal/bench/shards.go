package bench

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/cluster/slot"
	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
	"repro/internal/server"
	"repro/internal/ycsb"
)

// shardedStore is one opened shard of a bench cluster.
type shardedStore struct {
	heap  *ralloc.Heap
	store *kvstore.Store
}

// openShards builds an N-shard in-process cluster holding total heap bytes
// split evenly across shards — the constant-footprint discipline the
// shard-scaling rows depend on: the 4-shard row must not win by owning 4x
// the memory of the 1-shard row.
func openShards(shards int, totalHeap uint64, records int, pcfg pmem.Config) ([]shardedStore, []server.ShardBackend, error) {
	perHeap := totalHeap / uint64(shards)
	perBuckets := records / shards
	if perBuckets < 64 {
		perBuckets = 64
	}
	ss := make([]shardedStore, shards)
	backends := make([]server.ShardBackend, shards)
	for i := range ss {
		h, _, err := ralloc.Open("", ralloc.Config{SBRegion: perHeap, Pmem: pcfg})
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
		a := h.AsAllocator()
		store, root := kvstore.Open(a, a.NewHandle(), perBuckets)
		h.SetRoot(0, root)
		ss[i] = shardedStore{heap: h, store: store}
		backends[i] = server.ShardBackend{Alloc: a, Store: store}
	}
	return ss, backends, nil
}

// MemcachedNetShards is MemcachedNet against an N-shard server: N
// independent heaps behind the hash-slot router, total footprint equal to
// totalHeap regardless of N (so the by-shards rows isolate the sharding
// itself). Records load through the wire so every key takes the routed
// path it will take under traffic.
func MemcachedNetShards(t int, cfg MemcachedConfig, pipeline, shards int, totalHeap uint64, pcfg pmem.Config) (Result, error) {
	if pipeline < 1 {
		pipeline = 1
	}
	ss, backends, err := openShards(shards, totalHeap, cfg.Workload.Records, pcfg)
	if err != nil {
		return Result{}, err
	}
	defer func() {
		for _, s := range ss {
			s.heap.Close()
		}
	}()

	sock := filepath.Join(os.TempDir(),
		fmt.Sprintf("ralloc-shard-%d-%d.sock", os.Getpid(), netSockSeq.Add(1)))
	os.Remove(sock)
	l, err := net.Listen("unix", sock)
	if err != nil {
		return Result{}, fmt.Errorf("sharded bench listen: %w", err)
	}
	srv := server.NewSharded(backends, server.Config{})
	go srv.Serve(l)
	defer func() {
		srv.Shutdown(5 * time.Second)
		os.Remove(sock)
	}()

	// Load through a pipelining client: the router, not the loader, decides
	// which shard holds each record.
	lc, err := server.Dial("unix", sock)
	if err != nil {
		return Result{}, fmt.Errorf("sharded bench dial: %w", err)
	}
	defer lc.Close()
	loader := ycsb.NewGenerator(cfg.Workload, 999)
	var buf []byte
	for i := 0; i < cfg.Workload.Records; {
		batch := pipeline
		if rest := cfg.Workload.Records - i; batch > rest {
			batch = rest
		}
		for j := 0; j < batch; j++ {
			buf = loader.Value(buf)
			if err := lc.SendBytes([]byte("SET"), []byte(ycsb.KeyAt(i+j)), buf); err != nil {
				return Result{}, fmt.Errorf("sharded bench load: %w", err)
			}
		}
		if err := lc.Flush(); err != nil {
			return Result{}, fmt.Errorf("sharded bench load flush: %w", err)
		}
		for j := 0; j < batch; j++ {
			if rp, err := lc.Recv(); err != nil || rp.Err() != nil {
				return Result{}, fmt.Errorf("sharded bench load reply: %v / %v", err, rp.Err())
			}
		}
		i += batch
	}

	elapsed := runThreads(t, func(id int) {
		c, err := server.Dial("unix", sock)
		if err != nil {
			panic(fmt.Sprintf("sharded bench dial: %v", err))
		}
		defer c.Close()
		gen := ycsb.NewGenerator(cfg.Workload, int64(id)+1)
		var vbuf []byte
		for done := 0; done < cfg.OpsPerTh; {
			batch := pipeline
			if rest := cfg.OpsPerTh - done; batch > rest {
				batch = rest
			}
			for i := 0; i < batch; i++ {
				op := gen.Next()
				switch op.Kind {
				case ycsb.Read:
					err = c.SendBytes([]byte("GET"), []byte(op.Key))
				case ycsb.Update:
					vbuf = gen.Value(vbuf)
					err = c.SendBytes([]byte("SET"), []byte(op.Key), vbuf)
				}
				if err != nil {
					panic(fmt.Sprintf("sharded bench send: %v", err))
				}
			}
			if err := c.Flush(); err != nil {
				panic(fmt.Sprintf("sharded bench flush: %v", err))
			}
			for i := 0; i < batch; i++ {
				rp, err := c.Recv()
				if err != nil {
					panic(fmt.Sprintf("sharded bench recv: %v", err))
				}
				if err := rp.Err(); err != nil {
					panic(fmt.Sprintf("sharded bench reply: %v", err))
				}
			}
			done += batch
		}
	})
	ops := uint64(t) * uint64(cfg.OpsPerTh)
	res := Result{Allocator: "ralloc", Threads: t, Ops: ops, Elapsed: elapsed}
	if snap := srv.LatencySnapshot(); snap.Count > 0 {
		res.P50us = snap.Quantile(0.50) / 1e3
		res.P99us = snap.Quantile(0.99) / 1e3
	}
	return res, nil
}

// RecoveryResult is one shard-count row of the crash-recovery scaling axis.
type RecoveryResult struct {
	Shards  int
	Records int
	// Wall is the elapsed time of the parallel attach+recover of every
	// shard — what a client waits after kill -9. This is the number that
	// scales with cores; it is the one recorded in BENCH_10.json.
	Wall time.Duration
	// Work sums the per-shard recovery durations as measured during the
	// concurrent recovery. Each shard's duration includes time spent
	// descheduled behind the other shards, so on few cores Work approaches
	// shards x Wall — it bounds Wall from above, it is not CPU work.
	Work time.Duration
}

// RecoveryByShards measures post-crash recovery of the same dataset held as
// N shards: records keys are slot-routed onto N heaps (total footprint
// totalHeap regardless of N), every region crashes (unflushed lines drop,
// exactly kill -9), and the measured section re-attaches and GC-recovers
// all shards in parallel. The return includes the verified record count —
// a recovery that loses records is a bug, not a fast recovery.
func RecoveryByShards(shards, records int, totalHeap uint64, pcfg pmem.Config) (RecoveryResult, error) {
	pcfg.Mode = pmem.ModeCrashSim
	ss, _, err := openShards(shards, totalHeap, records, pcfg)
	if err != nil {
		return RecoveryResult{}, err
	}
	w := ycsb.WorkloadA(records)
	gen := ycsb.NewGenerator(w, 999)
	hds := make([]alloc.Handle, shards)
	for i, s := range ss {
		hds[i] = s.heap.AsAllocator().NewHandle()
	}
	var buf []byte
	for i := 0; i < records; i++ {
		key := []byte(ycsb.KeyAt(i))
		buf = gen.Value(buf)
		sh := slot.ShardOf(key, shards)
		if !ss[sh].store.SetBytes(hds[sh], key, buf) {
			return RecoveryResult{}, fmt.Errorf("shard %d: load OOM at record %d", sh, i)
		}
	}
	for i, s := range ss {
		if err := s.heap.Region().Crash(); err != nil {
			return RecoveryResult{}, fmt.Errorf("shard %d: crash: %w", i, err)
		}
	}

	rcfg := ralloc.Config{SBRegion: totalHeap / uint64(shards), Pmem: pcfg}
	stores := make([]*kvstore.Store, shards)
	works := make([]time.Duration, shards)
	errs := make([]error, shards)
	t0 := time.Now()
	var wg sync.WaitGroup
	for i := range ss {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h2, dirty, err := ralloc.Attach(ss[i].heap.Region(), rcfg)
			if err != nil {
				errs[i] = err
				return
			}
			if !dirty {
				errs[i] = fmt.Errorf("shard %d not dirty after crash", i)
				return
			}
			a2 := h2.AsAllocator()
			root := h2.GetRoot(0, nil)
			h2.GetRoot(0, kvstore.Filter(a2, root))
			stats, err := h2.Recover()
			if err != nil {
				errs[i] = err
				return
			}
			works[i] = stats.Duration
			stores[i] = kvstore.Attach(a2, root)
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return RecoveryResult{}, err
		}
	}
	got := 0
	for _, st := range stores {
		got += st.Len()
	}
	if got != records {
		return RecoveryResult{}, fmt.Errorf("recovered %d of %d records", got, records)
	}
	res := RecoveryResult{Shards: shards, Records: records, Wall: wall}
	for _, d := range works {
		res.Work += d
	}
	return res, nil
}
