// Package riv implements cross-heap persistent pointers — the Region ID in
// Value (RIV) scheme of Chen et al. that the paper lists as its near-term
// plan for general cross-heap references (§4.6): "Among our near-term plans
// is to implement a Region ID in Value (RIV) variant of pptr, retaining the
// smart pointer interface and the size of 64 bits."
//
// A Registry maps small persistent region ids to live mappings. Region ids
// are chosen by the application and must be stable across runs (e.g. a
// configuration constant per heap file); the registry itself is transient
// and rebuilt at startup, exactly like the paper's per-run function-pointer
// tables.
package riv

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/pmem"
	"repro/internal/pptr"
)

// Registry maps region ids to mapped regions. Safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	regions map[uint16]*pmem.Region
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{regions: make(map[uint16]*pmem.Region)}
}

// Errors returned by registry operations.
var (
	ErrDuplicateID   = errors.New("riv: region id already registered")
	ErrUnknownRegion = errors.New("riv: region id not registered")
	ErrNotRIV        = errors.New("riv: value is not a RIV pointer")
)

// Register binds id to a mapped region for this run.
func (rg *Registry) Register(id uint16, r *pmem.Region) error {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if _, dup := rg.regions[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	rg.regions[id] = r
	return nil
}

// Unregister removes a binding (e.g. when a heap is closed).
func (rg *Registry) Unregister(id uint16) {
	rg.mu.Lock()
	delete(rg.regions, id)
	rg.mu.Unlock()
}

// Lookup resolves a region id.
func (rg *Registry) Lookup(id uint16) (*pmem.Region, bool) {
	rg.mu.RLock()
	r, ok := rg.regions[id]
	rg.mu.RUnlock()
	return r, ok
}

// Ptr is the cross-heap smart pointer: a decoded (region, offset) pair.
type Ptr struct {
	Region uint16
	Off    uint64
}

// Nil is the null cross-heap pointer (region 0, offset 0 — offset 0 is
// never a valid block in any of this repository's allocators).
var Nil = Ptr{}

// IsNil reports whether p is null.
func (p Ptr) IsNil() bool { return p.Off == 0 }

// Word encodes p as a 64-bit RIV value suitable for storing in persistent
// memory.
func (p Ptr) Word() uint64 {
	if p.IsNil() {
		return pptr.Nil
	}
	return pptr.PackRIV(p.Region, p.Off)
}

// FromWord decodes a stored value; ok=false if v is not a RIV pointer.
func FromWord(v uint64) (Ptr, bool) {
	if v == pptr.Nil {
		return Nil, true
	}
	id, off, ok := pptr.UnpackRIV(v)
	if !ok {
		return Nil, false
	}
	return Ptr{Region: id, Off: off}, true
}

// Load reads the RIV pointer stored at byte offset holderOff in region
// holder and resolves it against the registry.
func (rg *Registry) Load(holder *pmem.Region, holderOff uint64) (Ptr, *pmem.Region, error) {
	v := holder.Load(holderOff)
	p, ok := FromWord(v)
	if !ok {
		return Nil, nil, fmt.Errorf("%w: %#x", ErrNotRIV, v)
	}
	if p.IsNil() {
		return Nil, nil, nil
	}
	target, found := rg.Lookup(p.Region)
	if !found {
		return Nil, nil, fmt.Errorf("%w: %d", ErrUnknownRegion, p.Region)
	}
	return p, target, nil
}

// Store writes a RIV pointer to byte offset holderOff in region holder,
// flushing the holder word so the cross-heap edge is durable.
func (rg *Registry) Store(holder *pmem.Region, holderOff uint64, p Ptr) error {
	if !p.IsNil() {
		if _, ok := rg.Lookup(p.Region); !ok {
			return fmt.Errorf("%w: %d", ErrUnknownRegion, p.Region)
		}
	}
	holder.Store(holderOff, p.Word())
	holder.Flush(holderOff)
	holder.Fence()
	return nil
}

// Deref returns the word at the pointer's target.
func (rg *Registry) Deref(p Ptr) (uint64, error) {
	target, ok := rg.Lookup(p.Region)
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownRegion, p.Region)
	}
	return target.Load(p.Off), nil
}
