package riv

import (
	"testing"
	"testing/quick"

	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/ralloc"
)

func twoHeaps(t *testing.T) (*ralloc.Heap, *ralloc.Heap, *Registry) {
	t.Helper()
	mk := func() *ralloc.Heap {
		h, _, err := ralloc.Open("", ralloc.Config{
			SBRegion: 8 << 20,
			Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := mk(), mk()
	rg := NewRegistry()
	if err := rg.Register(1, a.Region()); err != nil {
		t.Fatal(err)
	}
	if err := rg.Register(2, b.Region()); err != nil {
		t.Fatal(err)
	}
	return a, b, rg
}

func TestCrossHeapReference(t *testing.T) {
	ha, hb, rg := twoHeaps(t)
	hdA, hdB := ha.NewHandle(), hb.NewHandle()

	// A block in heap B holding a value.
	target := hdB.Malloc(16)
	hb.Region().Store(target, 0xB0B)
	hb.Region().FlushRange(target, 8)
	hb.Region().Fence()

	// A block in heap A pointing at it across heaps.
	holder := hdA.Malloc(16)
	if err := rg.Store(ha.Region(), holder, Ptr{Region: 2, Off: target}); err != nil {
		t.Fatal(err)
	}

	p, tr, err := rg.Load(ha.Region(), holder)
	if err != nil {
		t.Fatal(err)
	}
	if tr != hb.Region() || p.Off != target {
		t.Fatalf("Load = (%+v,%p)", p, tr)
	}
	v, err := rg.Deref(p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xB0B {
		t.Fatalf("Deref = %#x", v)
	}
}

func TestCrossHeapSurvivesBothCrashes(t *testing.T) {
	ha, hb, rg := twoHeaps(t)
	hdA, hdB := ha.NewHandle(), hb.NewHandle()

	target := hdB.Malloc(16)
	hb.Region().Store(target, 4242)
	hb.Region().FlushRange(target, 8)
	hb.Region().Fence()
	hb.SetRoot(0, target)

	holder := hdA.Malloc(16)
	if err := rg.Store(ha.Region(), holder, Ptr{Region: 2, Off: target}); err != nil {
		t.Fatal(err)
	}
	ha.SetRoot(0, holder)

	// Crash both heaps; each recovers independently from its own roots
	// (cross-heap edges are not traced — the RIV word is just data to
	// heap A's GC, and heap B keeps its block alive via its own root).
	if err := ha.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	if err := hb.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	ha.GetRoot(0, nil)
	hb.GetRoot(0, nil)
	if _, err := ha.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Recover(); err != nil {
		t.Fatal(err)
	}

	p, _, err := rg.Load(ha.Region(), holder)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rg.Deref(p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4242 {
		t.Fatalf("cross-heap value after double recovery = %d", v)
	}
}

func TestRIVInvisibleToConservativeGC(t *testing.T) {
	// A RIV word inside heap A must not be mistaken for an off-holder:
	// heap A's conservative GC ignores it.
	ha, hb, rg := twoHeaps(t)
	hdA, hdB := ha.NewHandle(), hb.NewHandle()
	target := hdB.Malloc(16)
	holder := hdA.Malloc(16)
	if err := rg.Store(ha.Region(), holder, Ptr{Region: 2, Off: target}); err != nil {
		t.Fatal(err)
	}
	ha.SetRoot(0, holder)
	if err := ha.Region().Crash(); err != nil {
		t.Fatal(err)
	}
	ha.GetRoot(0, nil)
	stats, err := ha.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReachableBlocks != 1 {
		t.Fatalf("reachable = %d; RIV word must not trace within heap A", stats.ReachableBlocks)
	}
}

func TestNilRoundTrip(t *testing.T) {
	if Nil.Word() != pptr.Nil {
		t.Fatal("Nil must encode as the zero word")
	}
	p, ok := FromWord(pptr.Nil)
	if !ok || !p.IsNil() {
		t.Fatalf("FromWord(0) = (%+v,%v)", p, ok)
	}
}

func TestUnknownRegionErrors(t *testing.T) {
	rg := NewRegistry()
	if _, err := rg.Deref(Ptr{Region: 7, Off: 64}); err == nil {
		t.Fatal("Deref of unregistered region succeeded")
	}
	r := pmem.NewRegion(4096, pmem.Config{})
	if err := rg.Store(r, 0, Ptr{Region: 7, Off: 64}); err == nil {
		t.Fatal("Store of unregistered region succeeded")
	}
}

func TestDuplicateRegistration(t *testing.T) {
	rg := NewRegistry()
	r := pmem.NewRegion(4096, pmem.Config{})
	if err := rg.Register(3, r); err != nil {
		t.Fatal(err)
	}
	if err := rg.Register(3, r); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
	rg.Unregister(3)
	if err := rg.Register(3, r); err != nil {
		t.Fatalf("re-registration after Unregister failed: %v", err)
	}
}

func TestLoadRejectsNonRIV(t *testing.T) {
	rg := NewRegistry()
	r := pmem.NewRegion(4096, pmem.Config{})
	r.Store(0, pptr.Pack(0x40, 0x80)) // an off-holder, not a RIV
	if _, _, err := rg.Load(r, 0); err == nil {
		t.Fatal("Load accepted an off-holder as RIV")
	}
}

func TestQuickRIVCodec(t *testing.T) {
	f := func(id uint16, off uint64) bool {
		id %= pptr.MaxRIVRegions
		off %= 1 << 40
		gid, goff, ok := pptr.UnpackRIV(pptr.PackRIV(id, off))
		return ok && gid == id && goff == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRIVAndOffHolderMagicsDisjoint(t *testing.T) {
	// Every RIV value must fail off-holder decoding and vice versa.
	v := pptr.PackRIV(5, 0x1000)
	if pptr.IsOffHolder(v) {
		t.Fatal("RIV value decodes as off-holder")
	}
	w := pptr.Pack(0x40, 0x80)
	if pptr.IsRIV(w) {
		t.Fatal("off-holder decodes as RIV")
	}
}
