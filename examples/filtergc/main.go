// Filter functions: why conservative GC is not enough, and how a
// user-provided filter fixes it (§4.5.1).
//
// The demo builds two identical 1000-node lists. One links with plain
// off-holders (conservative-traceable); the other links with counter-tagged
// offsets — a nonstandard pointer representation like those used by
// lock-free structures for ABA protection. After a crash, conservative
// recovery preserves the first list but loses the second; recovery with the
// list's filter function preserves both.
//
//	go run ./examples/filtergc
package main

import (
	"fmt"
	"log"

	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/ralloc"
)

const nodes = 1000

func buildOffHolderList(h *ralloc.Heap, hd *ralloc.Handle) uint64 {
	r := h.Region()
	var head uint64
	for i := 0; i < nodes; i++ {
		n := hd.Malloc(16)
		if head == 0 {
			r.Store(n, pptr.Nil)
		} else {
			r.Store(n, pptr.Pack(n, head))
		}
		r.Store(n+8, uint64(i))
		r.FlushRange(n, 16)
		r.Fence()
		head = n
	}
	return head
}

func buildTaggedList(h *ralloc.Heap, hd *ralloc.Handle) uint64 {
	r := h.Region()
	var head uint64
	for i := 0; i < nodes; i++ {
		n := hd.Malloc(16)
		r.Store(n, pptr.PackTag(uint64(i), head)) // tagged link: opaque to conservative GC
		r.Store(n+8, uint64(i))
		r.FlushRange(n, 16)
		r.Fence()
		head = n
	}
	return head
}

func main() {
	heap, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 32 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		log.Fatal(err)
	}
	hd := heap.NewHandle()
	r := heap.Region()

	plain := buildOffHolderList(heap, hd)
	tagged := buildTaggedList(heap, hd)
	heap.SetRoot(0, plain)
	heap.SetRoot(1, tagged)

	if err := r.Crash(); err != nil {
		log.Fatal(err)
	}

	// Audit 1: conservative tracing for both roots. Trace is read-only,
	// so we can compare configurations before committing to a sweep.
	heap.GetRoot(0, nil)
	heap.GetRoot(1, nil)
	blocks, _ := heap.Trace()
	fmt.Printf("conservative trace: %d reachable blocks (built %d)\n", blocks, 2*nodes)
	fmt.Println("  -> the tagged list's nodes are invisible: only its head is found")

	// Audit 2: register a filter for the tagged list.
	var taggedFilter ralloc.Filter
	taggedFilter = func(g *ralloc.GC, off uint64) {
		if _, next := pptr.UnpackTag(r.Load(off)); next != 0 {
			g.Visit(next, taggedFilter)
		}
	}
	heap.GetRoot(0, nil)
	heap.GetRoot(1, taggedFilter)
	blocks, _ = heap.Trace()
	fmt.Printf("filtered trace:     %d reachable blocks (built %d)\n", blocks, 2*nodes)

	// Now the real recovery, with the correct filters registered.
	stats, err := heap.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery kept %d blocks in %v\n", stats.ReachableBlocks, stats.Duration)

	// Verify both lists.
	count := 0
	for n := heap.GetRoot(0, nil); n != 0; count++ {
		n, _ = pptr.Unpack(n, r.Load(n))
	}
	fmt.Printf("off-holder list: %d nodes intact\n", count)
	count = 0
	for n := heap.GetRoot(1, taggedFilter); n != 0; count++ {
		_, n = pptr.UnpackTag(r.Load(n))
	}
	fmt.Printf("tagged list:     %d nodes intact\n", count)
}
