// Position independence: build a persistent red-black tree, save the heap
// image, then load it into a *different* region object — the stand-in for a
// different process mapping the DAX file at a different virtual address —
// and read the structure back. Because every pointer in the heap is an
// off-holder (offset from its own location), nothing needs to be relocated
// or swizzled (§4.6).
//
//	go run ./examples/remap
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/dstruct"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

func main() {
	// Process A: build the tree.
	heapA, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 32 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		log.Fatal(err)
	}
	a := heapA.AsAllocator()
	hd := heapA.NewHandle()
	tree, hdrOff := dstruct.NewRBTree(a, hd)
	for k := uint64(1); k <= 1000; k++ {
		if !tree.Put(hd, k, k*k) {
			log.Fatal("out of memory")
		}
	}
	heapA.SetRoot(0, hdrOff)
	if err := heapA.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("process A: built 1000-key tree, closed heap")

	// "Ship" the image: serialize process A's heap...
	var image bytes.Buffer
	if err := heapA.Region().Save(&image); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image is %d bytes\n", image.Len())

	// Process B: map the image into a brand-new region (new "address
	// space") and attach without any relocation.
	regionB, err := pmem.LoadRegion(&image, pmem.Config{Mode: pmem.ModeCrashSim})
	if err != nil {
		log.Fatal(err)
	}
	heapB, dirty, err := ralloc.Attach(regionB, ralloc.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process B: attached (dirty=%v)\n", dirty)

	rootB := heapB.GetRoot(0, nil)
	treeB := dstruct.AttachRBTree(heapB.AsAllocator(), rootB)
	if err := treeB.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	sum := uint64(0)
	treeB.Ascend(func(k, v uint64) bool {
		if v != k*k {
			log.Fatalf("key %d has value %d, want %d", k, v, k*k)
		}
		sum += v
		return true
	})
	fmt.Printf("process B: all 1000 entries verified at the new mapping (sum=%d)\n", sum)

	// And process B can keep allocating in the same heap.
	hdB := heapB.NewHandle()
	if !treeB.Put(hdB, 1001, 1001*1001) {
		log.Fatal("out of memory")
	}
	fmt.Printf("process B: inserted key 1001; tree now has %d keys\n", treeB.Len())
}
