// Quickstart: open a Ralloc heap, allocate persistent memory, survive a
// full-system crash, and recover with garbage collection.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/pmem"
	"repro/internal/pptr"
	"repro/internal/ralloc"
)

func main() {
	// 1. Open a heap. ModeCrashSim keeps a shadow "NVM" image so we can
	//    inject a crash; real deployments would point path at a DAX file.
	heap, dirty, err := ralloc.Open("", ralloc.Config{
		SBRegion: 64 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened heap (dirty=%v)\n", dirty)

	// 2. Allocate from a per-goroutine handle — the lock-free fast path.
	hd := heap.NewHandle()
	r := heap.Region()

	// Build a 3-node linked list of position-independent pointers
	// (off-holders). Each node: [next, value]. Durable linearizability
	// is the application's job: flush the node, fence, then publish.
	var head uint64
	for i := uint64(1); i <= 3; i++ {
		node := hd.Malloc(16)
		if head == 0 {
			r.Store(node, pptr.Nil)
		} else {
			r.Store(node, pptr.Pack(node, head))
		}
		r.Store(node+8, i*100)
		r.FlushRange(node, 16)
		r.Fence()
		head = node
	}

	// 3. Register the list as a persistent root — the anchor for
	//    post-crash tracing.
	heap.SetRoot(0, head)

	// Allocate some blocks we never attach: in-flight work that a crash
	// would leak under malloc/free without GC.
	for i := 0; i < 1000; i++ {
		hd.Malloc(64)
	}

	// 4. Crash. Everything not flushed (allocator caches, the leaked
	//    blocks' ownership, most allocator metadata) is gone.
	if err := r.Crash(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("crash injected")

	// 5. Recover: re-register roots (nil filter = conservative tracing,
	//    fine here because the list links are off-holders), then run GC +
	//    metadata reconstruction.
	head = heap.GetRoot(0, nil)
	stats, err := heap.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d reachable blocks, %d superblocks freed, in %v\n",
		stats.ReachableBlocks, stats.FreeSuperblocks, stats.Duration)

	// 6. The list is intact; the leaked blocks were reclaimed.
	for node := head; node != 0; {
		fmt.Printf("  node %#x value=%d\n", node, r.Load(node+8))
		node, _ = pptr.Unpack(node, r.Load(node))
	}

	if err := heap.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean shutdown")
}
