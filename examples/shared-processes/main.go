// Shared heap across processes (§4.5.2): several mutually untrusting
// "processes" share one persistent heap through a protected library; one of
// them crashes mid-flight. The manager — notified of the death — runs a
// blocking, stop-the-world collection in a quiescent interval. The crashed
// process's leaked blocks (its thread caches and unattached allocations)
// are reclaimed while the survivors' caches and structures come through
// untouched, and execution continues without a full-system restart.
//
//	go run ./examples/shared-processes
package main

import (
	"fmt"
	"log"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

func main() {
	heap, _, err := ralloc.Open("", ralloc.Config{
		SBRegion: 128 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	})
	if err != nil {
		log.Fatal(err)
	}
	a := heap.AsAllocator()
	mgr := heap.NewManager()

	// Process "alice" owns a persistent KV store.
	alice := mgr.Spawn()
	hdA := alice.NewHandle()
	store, root := kvstore.Open(a, hdA, 1024)
	for i := 0; i < 5000; i++ {
		if !store.Set(hdA, fmt.Sprintf("alice-%04d", i), "survives") {
			log.Fatal("out of memory")
		}
	}
	heap.SetRoot(0, root)
	fmt.Printf("alice: stored %d records\n", store.Len())

	// Process "bob" does a burst of allocation work and dies mid-flight.
	bob := mgr.Spawn()
	hdB := bob.NewHandle()
	for i := 0; i < 20000; i++ {
		hdB.Malloc(64) // allocated, never attached anywhere
	}
	used := heap.SBUsed()
	fmt.Printf("bob: allocated 20000 blocks, heap used = %d KB\n", used/1024)
	mgr.Kill(bob)
	fmt.Printf("bob crashed. manager notified: crashedSince=%v, live processes=%d\n",
		mgr.CrashedSinceCollection(), mgr.LiveProcesses())

	// Quiescent interval: alice pauses; the manager collects.
	heap.GetRoot(0, store.Filter())
	stats, err := mgr.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stop-the-world collection: %d blocks reachable or pinned, %d superblocks freed, %v\n",
		stats.ReachableBlocks, stats.FreeSuperblocks, stats.Duration)

	// Alice continues without interruption — same handle, same cache.
	for i := 0; i < 1000; i++ {
		if !store.Set(hdA, fmt.Sprintf("alice-post-%04d", i), "still here") {
			log.Fatal("out of memory")
		}
	}
	if v, ok := store.Get("alice-0000"); !ok || v != "survives" {
		log.Fatal("alice's data damaged")
	}

	// A new process reuses bob's reclaimed memory: the heap did not grow.
	carol := mgr.Spawn()
	hdC := carol.NewHandle()
	for i := 0; i < 20000; i++ {
		if hdC.Malloc(64) == 0 {
			log.Fatal("leak not reclaimed")
		}
	}
	fmt.Printf("carol: reallocated 20000 blocks; heap used = %d KB (unchanged: %v)\n",
		heap.SBUsed()/1024, heap.SBUsed() <= used)
	fmt.Printf("alice's store intact with %d records\n", store.Len())
}
