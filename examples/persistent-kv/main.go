// Persistent key-value store: a memcached-like store whose contents survive
// process restarts via the heap's DAX-file image, including restarts after
// a crash (dirty heap → recovery).
//
//	go run ./examples/persistent-kv            # first run: creates the store
//	go run ./examples/persistent-kv            # second run: reopens it
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
)

const rootKV = 0

func main() {
	path := filepath.Join(os.TempDir(), "ralloc-example-kv.heap")
	cfg := ralloc.Config{
		SBRegion: 64 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	}
	heap, dirty, err := ralloc.Open(path, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := heap.AsAllocator()
	hd := heap.NewHandle()

	var store *kvstore.Store
	root := heap.GetRoot(rootKV, nil)
	switch {
	case root == 0:
		// Fresh heap: create the store and register it.
		store, root = kvstore.Open(a, hd, 1024)
		heap.SetRoot(rootKV, root)
		fmt.Println("created a new store")
	case dirty:
		// Crashed last time: recover with the store's filter first.
		heap.GetRoot(rootKV, kvstore.Filter(a, root))
		stats, err := heap.Recover()
		if err != nil {
			log.Fatal(err)
		}
		store = kvstore.Attach(a, root)
		fmt.Printf("recovered store after crash: %d reachable blocks, %v\n",
			stats.ReachableBlocks, stats.Duration)
	default:
		store = kvstore.Attach(a, root)
		fmt.Println("reopened store after clean shutdown")
	}

	// Show what survived from previous runs, then add to it.
	if v, ok := store.Get("runs"); ok {
		fmt.Printf("store remembers: runs=%s, greeting=%q\n", v, firstOr(store, "greeting"))
	}
	runs := 0
	if v, ok := store.Get("runs"); ok {
		fmt.Sscanf(v, "%d", &runs)
	}
	runs++
	if !store.Set(hd, "runs", fmt.Sprintf("%d", runs)) ||
		!store.Set(hd, "greeting", "hello from persistent memory") {
		log.Fatal("out of memory")
	}
	fmt.Printf("this is run #%d; store holds %d records\n", runs, store.Len())

	// Clean shutdown writes the heap back to its file.
	if err := heap.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved to %s\n", path)
}

func firstOr(s *kvstore.Store, key string) string {
	v, _ := s.Get(key)
	return v
}
