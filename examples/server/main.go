// Networked persistent KV quickstart: start the RESP server over a
// file-backed recoverable heap, talk to it through the pipelining client,
// checkpoint, and shut down cleanly. Run it twice — the data (and the visit
// counter) survive the restart:
//
//	go run ./examples/server     # first run: creates the store
//	go run ./examples/server     # second run: reopens it, counter increments
//
// While it is running you can also connect with any RESP client
// (e.g. redis-cli -s /tmp/ralloc-example-server.sock).
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/ralloc"
	"repro/internal/server"
)

const rootKV = 0

func main() {
	heapPath := filepath.Join(os.TempDir(), "ralloc-example-server.heap")
	sock := filepath.Join(os.TempDir(), "ralloc-example-server.sock")

	// 1. Open (or recover) the persistent heap and the store inside it.
	cfg := ralloc.Config{
		SBRegion: 64 << 20,
		Pmem:     pmem.Config{Mode: pmem.ModeCrashSim},
	}
	heap, dirty, err := ralloc.Open(heapPath, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := heap.AsAllocator()
	const bound = 32 << 20
	var store *kvstore.Store
	root := heap.GetRoot(rootKV, nil)
	switch {
	case root == 0:
		store, root = kvstore.OpenBounded(a, heap.NewHandle(), 1024, bound)
		heap.SetRoot(rootKV, root)
		fmt.Println("created a fresh store")
	case dirty:
		heap.GetRoot(rootKV, kvstore.Filter(a, root))
		if _, err := heap.Recover(); err != nil {
			log.Fatal(err)
		}
		store = kvstore.AttachBounded(a, root, bound)
		fmt.Println("recovered store after a crash")
	default:
		store = kvstore.AttachBounded(a, root, bound)
		fmt.Println("reopened store after clean shutdown")
	}

	// 2. Serve it on a unix socket.
	srv := server.New(a, store, server.Config{
		Checkpoint: func() error {
			heap.Region().Persist()
			return heap.Region().SaveFile(heapPath)
		},
	})
	os.Remove(sock)
	l, err := net.Listen("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)

	// 3. Talk to it like any client would.
	c, err := server.Dial("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Set("greeting", "hello over the wire"); err != nil {
		log.Fatal(err)
	}
	if v, ok, _ := c.Get("greeting"); ok {
		fmt.Printf("GET greeting -> %q\n", v)
	}
	visits, err := c.Do("INCR", "visits")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("INCR visits -> %d (persists across runs)\n", visits.Int)

	// A pipelined burst: 100 SETs, one round trip.
	for i := 0; i < 100; i++ {
		c.Send("SET", fmt.Sprintf("burst-%03d", i), "x")
	}
	c.Flush()
	for i := 0; i < 100; i++ {
		if _, err := c.Recv(); err != nil {
			log.Fatal(err)
		}
	}
	n, _ := c.DBSize()
	fmt.Printf("DBSIZE -> %d records\n", n)

	// 4. Checkpoint (survives SIGKILL from here), then drain and close.
	if rp, err := c.Do("SAVE"); err != nil || rp.Str != "OK" {
		log.Fatalf("SAVE: %+v %v", rp, err)
	}
	fmt.Println("checkpointed: a kill -9 now would recover to this state")
	c.Close()
	if err := srv.Shutdown(2 * time.Second); err != nil {
		log.Print(err)
	}
	os.Remove(sock)
	if err := heap.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean shutdown; heap saved to %s\n", heapPath)
}
