// Package repro is a Go reproduction of "Understanding and Optimizing
// Persistent Memory Allocation" (Cai, Wen, Beadle, Kjellqvist, Hedayati,
// Scott; U. Rochester TR #1008 / PPoPP 2020 BA).
//
// The root package carries only the repository-level benchmarks
// (bench_test.go), one per table/figure of the paper; the implementation
// lives under internal/ — see README.md and DESIGN.md for the map.
package repro
